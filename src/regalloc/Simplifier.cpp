//===- regalloc/Simplifier.cpp --------------------------------------------===//

#include "regalloc/Simplifier.h"

#include "target/MachineDescription.h"

#include <cassert>
#include <limits>
#include <queue>
#include <utility>

using namespace ccra;

namespace {

/// State shared by both implementations: degrees, per-node color limits
/// (shrunk by registers locked from earlier refusals), and keys evaluated
/// once per node — Key is a pure function of the LiveRange, so caching it
/// cannot change any pick.
struct SimplifyState {
  std::vector<unsigned> Degree;
  std::vector<unsigned> ColorLimit;
  std::vector<double> CachedKey;
  std::vector<bool> Active;

  SimplifyState(const AllocationContext &Ctx, const Simplifier::KeyFn &Key) {
    const InterferenceGraph &IG = Ctx.IG;
    const LiveRangeSet &LRS = Ctx.LRS;
    unsigned NumNodes = IG.numNodes();

    // Registers refused in earlier rounds are locked and shrink the number
    // of colors actually available — the simplification threshold must
    // match or the colorability guarantee breaks.
    unsigned LockedPerBank[NumRegBanks] = {0, 0};
    for (PhysReg Reg : Ctx.RefusedCalleeRegs)
      ++LockedPerBank[static_cast<unsigned>(Reg.Bank)];

    Degree.resize(NumNodes);
    ColorLimit.resize(NumNodes);
    CachedKey.assign(NumNodes, 0.0);
    Active.assign(NumNodes, true);
    for (unsigned I = 0; I < NumNodes; ++I) {
      Degree[I] = IG.degree(I);
      RegBank Bank = LRS.range(I).Bank;
      unsigned Total = Ctx.MD.numRegs(Bank);
      unsigned Locked =
          std::min(LockedPerBank[static_cast<unsigned>(Bank)], Total);
      ColorLimit[I] = Total - Locked;
      if (Key)
        CachedKey[I] = Key(LRS.range(I));
    }
  }
};

} // namespace

SimplifyResult Simplifier::run(const AllocationContext &Ctx, bool Optimistic,
                               const KeyFn &Key) {
  const InterferenceGraph &IG = Ctx.IG;
  const LiveRangeSet &LRS = Ctx.LRS;
  unsigned NumNodes = IG.numNodes();

  SimplifyResult Result;
  Result.PushedOptimistically.assign(NumNodes, false);
  Result.Stack.reserve(NumNodes);

  SimplifyState S(Ctx, Key);

  // Unconstrained active nodes in a (key, index) min-heap: the pop order is
  // exactly the reference scan's "smallest key, lowest index on ties".
  // Constrained active nodes in a dense swap-removable set for the blocked
  // paths. A node enters the heap at most once — degrees only decrease, so
  // the constrained -> unconstrained transition is one-way — which means no
  // entry is ever stale while the node is active.
  using HeapEntry = std::pair<double, unsigned>;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                      std::greater<HeapEntry>>
      Unconstrained;
  std::vector<unsigned> Constrained;
  std::vector<unsigned> ConstrainedPos(NumNodes, ~0u);

  for (unsigned I = 0; I < NumNodes; ++I) {
    if (S.Degree[I] < S.ColorLimit[I]) {
      Unconstrained.push({S.CachedKey[I], I});
    } else {
      ConstrainedPos[I] = static_cast<unsigned>(Constrained.size());
      Constrained.push_back(I);
    }
  }

  auto RemoveConstrained = [&](unsigned Node) {
    unsigned Pos = ConstrainedPos[Node];
    assert(Pos != ~0u && "node not in constrained set");
    unsigned Last = Constrained.back();
    Constrained[Pos] = Last;
    ConstrainedPos[Last] = Pos;
    Constrained.pop_back();
    ConstrainedPos[Node] = ~0u;
  };

  auto Deactivate = [&](unsigned Node) {
    S.Active[Node] = false;
    for (unsigned Neighbor : IG.neighbors(Node)) {
      if (!S.Active[Neighbor])
        continue;
      // An active neighbor's degree counts Node, so it is >= 1 and the
      // decrement is safe. Crossing the limit moves it to the heap.
      if (S.Degree[Neighbor]-- == S.ColorLimit[Neighbor]) {
        RemoveConstrained(Neighbor);
        Unconstrained.push({S.CachedKey[Neighbor], Neighbor});
      }
    }
  };

  unsigned Remaining = NumNodes;
  while (Remaining > 0) {
    int Best = -1;
    while (!Unconstrained.empty()) {
      HeapEntry Top = Unconstrained.top();
      Unconstrained.pop();
      if (S.Active[Top.second]) {
        Best = static_cast<int>(Top.second);
        break;
      }
    }
    if (Best >= 0) {
      Result.Stack.push_back(static_cast<unsigned>(Best));
      Deactivate(static_cast<unsigned>(Best));
      --Remaining;
      continue;
    }

    // Blocked: the heap drained, so every active node is in Constrained and
    // the scans below cover exactly the nodes the reference scans. Explicit
    // (metric, index) lexicographic comparisons reproduce its ascending
    // first-wins tie-break whatever order the set is in.
    int Victim = -1;
    double VictimMetric = std::numeric_limits<double>::infinity();
    for (unsigned I : Constrained) {
      if (LRS.range(I).NoSpill)
        continue;
      double Metric = LRS.range(I).spillCost() /
                      static_cast<double>(std::max(S.Degree[I], 1u));
      if (Victim < 0 || Metric < VictimMetric ||
          (Metric == VictimMetric && static_cast<int>(I) < Victim)) {
        Victim = static_cast<int>(I);
        VictimMetric = Metric;
      }
    }
    bool EmergencyNoSpill = Victim < 0;
    if (EmergencyNoSpill) {
      // Only unspillable reload temporaries remain. Push the one with the
      // smallest degree and hope color assignment finds room (its steal
      // fallback guarantees progress).
      unsigned BestDegree = ~0u;
      for (unsigned I : Constrained)
        if (S.Degree[I] < BestDegree ||
            (S.Degree[I] == BestDegree && static_cast<int>(I) < Victim)) {
          Victim = static_cast<int>(I);
          BestDegree = S.Degree[I];
        }
      assert(Victim >= 0 && "no active node while Remaining > 0");
    }

    unsigned V = static_cast<unsigned>(Victim);
    if (Optimistic || EmergencyNoSpill) {
      Result.Stack.push_back(V);
      Result.PushedOptimistically[V] = true;
    } else {
      Result.SpilledNodes.push_back(V);
    }
    RemoveConstrained(V);
    Deactivate(V);
    --Remaining;
  }
  return Result;
}

SimplifyResult Simplifier::runReference(const AllocationContext &Ctx,
                                        bool Optimistic, const KeyFn &Key) {
  const InterferenceGraph &IG = Ctx.IG;
  const LiveRangeSet &LRS = Ctx.LRS;
  unsigned NumNodes = IG.numNodes();

  SimplifyResult Result;
  Result.PushedOptimistically.assign(NumNodes, false);
  Result.Stack.reserve(NumNodes);

  SimplifyState S(Ctx, Key);

  auto Deactivate = [&](unsigned Node) {
    S.Active[Node] = false;
    for (unsigned Neighbor : IG.neighbors(Node))
      if (S.Active[Neighbor])
        --S.Degree[Neighbor];
  };

  unsigned Remaining = NumNodes;
  while (Remaining > 0) {
    // Find the unconstrained node with the smallest key.
    int Best = -1;
    double BestKey = std::numeric_limits<double>::infinity();
    for (unsigned I = 0; I < NumNodes; ++I) {
      if (!S.Active[I] || S.Degree[I] >= S.ColorLimit[I])
        continue;
      double K = S.CachedKey[I];
      if (Best < 0 || K < BestKey) {
        Best = static_cast<int>(I);
        BestKey = K;
      }
    }
    if (Best >= 0) {
      Result.Stack.push_back(static_cast<unsigned>(Best));
      Deactivate(static_cast<unsigned>(Best));
      --Remaining;
      continue;
    }

    // Blocked: choose a spill candidate minimizing spillCost / degree.
    int Victim = -1;
    double VictimMetric = std::numeric_limits<double>::infinity();
    for (unsigned I = 0; I < NumNodes; ++I) {
      if (!S.Active[I] || LRS.range(I).NoSpill)
        continue;
      double Metric = LRS.range(I).spillCost() /
                      static_cast<double>(std::max(S.Degree[I], 1u));
      if (Victim < 0 || Metric < VictimMetric) {
        Victim = static_cast<int>(I);
        VictimMetric = Metric;
      }
    }
    bool EmergencyNoSpill = Victim < 0;
    if (EmergencyNoSpill) {
      // Only unspillable reload temporaries remain. Push the one with the
      // smallest degree and hope color assignment finds room (its steal
      // fallback guarantees progress).
      unsigned BestDegree = ~0u;
      for (unsigned I = 0; I < NumNodes; ++I)
        if (S.Active[I] && S.Degree[I] < BestDegree) {
          Victim = static_cast<int>(I);
          BestDegree = S.Degree[I];
        }
      assert(Victim >= 0 && "no active node while Remaining > 0");
    }

    unsigned V = static_cast<unsigned>(Victim);
    if (Optimistic || EmergencyNoSpill) {
      Result.Stack.push_back(V);
      Result.PushedOptimistically[V] = true;
    } else {
      Result.SpilledNodes.push_back(V);
    }
    Deactivate(V);
    --Remaining;
  }
  return Result;
}
