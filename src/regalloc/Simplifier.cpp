//===- regalloc/Simplifier.cpp --------------------------------------------===//

#include "regalloc/Simplifier.h"

#include "target/MachineDescription.h"

#include <cassert>
#include <limits>

using namespace ccra;

SimplifyResult Simplifier::run(const AllocationContext &Ctx, bool Optimistic,
                               const KeyFn &Key) {
  const InterferenceGraph &IG = Ctx.IG;
  const LiveRangeSet &LRS = Ctx.LRS;
  unsigned NumNodes = IG.numNodes();

  SimplifyResult Result;
  Result.PushedOptimistically.assign(NumNodes, false);
  Result.Stack.reserve(NumNodes);

  // Registers refused in earlier rounds are locked and shrink the number
  // of colors actually available — the simplification threshold must match
  // or the colorability guarantee breaks.
  unsigned LockedPerBank[NumRegBanks] = {0, 0};
  for (PhysReg Reg : Ctx.RefusedCalleeRegs)
    ++LockedPerBank[static_cast<unsigned>(Reg.Bank)];

  std::vector<unsigned> Degree(NumNodes);
  std::vector<unsigned> ColorLimit(NumNodes);
  std::vector<bool> Active(NumNodes, true);
  for (unsigned I = 0; I < NumNodes; ++I) {
    Degree[I] = IG.degree(I);
    RegBank Bank = LRS.range(I).Bank;
    unsigned Total = Ctx.MD.numRegs(Bank);
    unsigned Locked = std::min(LockedPerBank[static_cast<unsigned>(Bank)],
                               Total);
    ColorLimit[I] = Total - Locked;
  }

  auto Deactivate = [&](unsigned Node) {
    Active[Node] = false;
    for (unsigned Neighbor : IG.neighbors(Node))
      if (Active[Neighbor])
        --Degree[Neighbor];
  };

  unsigned Remaining = NumNodes;
  while (Remaining > 0) {
    // Find the unconstrained node with the smallest key.
    int Best = -1;
    double BestKey = std::numeric_limits<double>::infinity();
    for (unsigned I = 0; I < NumNodes; ++I) {
      if (!Active[I] || Degree[I] >= ColorLimit[I])
        continue;
      double K = Key ? Key(LRS.range(I)) : 0.0;
      if (Best < 0 || K < BestKey) {
        Best = static_cast<int>(I);
        BestKey = K;
      }
    }
    if (Best >= 0) {
      Result.Stack.push_back(static_cast<unsigned>(Best));
      Deactivate(static_cast<unsigned>(Best));
      --Remaining;
      continue;
    }

    // Blocked: choose a spill candidate minimizing spillCost / degree.
    int Victim = -1;
    double VictimMetric = std::numeric_limits<double>::infinity();
    for (unsigned I = 0; I < NumNodes; ++I) {
      if (!Active[I] || LRS.range(I).NoSpill)
        continue;
      double Metric = LRS.range(I).spillCost() /
                      static_cast<double>(std::max(Degree[I], 1u));
      if (Victim < 0 || Metric < VictimMetric) {
        Victim = static_cast<int>(I);
        VictimMetric = Metric;
      }
    }
    bool EmergencyNoSpill = Victim < 0;
    if (EmergencyNoSpill) {
      // Only unspillable reload temporaries remain. Push the one with the
      // smallest degree and hope color assignment finds room (its steal
      // fallback guarantees progress).
      unsigned BestDegree = ~0u;
      for (unsigned I = 0; I < NumNodes; ++I)
        if (Active[I] && Degree[I] < BestDegree) {
          Victim = static_cast<int>(I);
          BestDegree = Degree[I];
        }
      assert(Victim >= 0 && "no active node while Remaining > 0");
    }

    unsigned V = static_cast<unsigned>(Victim);
    if (Optimistic || EmergencyNoSpill) {
      Result.Stack.push_back(V);
      Result.PushedOptimistically[V] = true;
    } else {
      Result.SpilledNodes.push_back(V);
    }
    Deactivate(V);
    --Remaining;
  }
  return Result;
}
