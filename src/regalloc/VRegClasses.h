//===- regalloc/VRegClasses.h - Coalescing congruence classes ---*- C++ -*-===//
///
/// \file
/// Union-find over virtual registers. The coalescing phase merges the
/// source and destination of copy instructions into one congruence class;
/// each class is one live range for the rest of the allocation.
///
//===----------------------------------------------------------------------===//

#ifndef CCRA_REGALLOC_VREGCLASSES_H
#define CCRA_REGALLOC_VREGCLASSES_H

#include "ir/Register.h"

#include <vector>

namespace ccra {

class VRegClasses {
public:
  VRegClasses() = default;
  explicit VRegClasses(unsigned NumVRegs) { grow(NumVRegs); }

  /// Extends the structure to cover at least \p NumVRegs registers (new
  /// registers start as singleton classes). Spill temporaries created
  /// between allocation rounds enter this way.
  void grow(unsigned NumVRegs);

  unsigned size() const { return static_cast<unsigned>(Parent.size()); }

  /// Returns the representative of \p R's class.
  VirtReg find(VirtReg R) const;

  /// Merges the classes of \p A and \p B; returns the new representative.
  VirtReg merge(VirtReg A, VirtReg B);

  /// True if \p A and \p B are in the same class.
  bool sameClass(VirtReg A, VirtReg B) const { return find(A) == find(B); }

  /// Collects all members of \p R's class.
  std::vector<VirtReg> classMembers(VirtReg R) const;

private:
  // Path-halving find on a mutable parent array (const-friendly via
  // amortized updates being semantically transparent).
  mutable std::vector<unsigned> Parent;
  std::vector<unsigned> Rank;
};

} // namespace ccra

#endif // CCRA_REGALLOC_VREGCLASSES_H
