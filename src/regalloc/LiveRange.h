//===- regalloc/LiveRange.h - Live ranges and their cost metrics -*- C++ -*-===//
///
/// \file
/// A live range is one coalescing congruence class of virtual registers
/// together with the cost metrics the paper's storage-class analysis needs
/// (§4): the weighted reference count (== spill cost), the caller-save cost
/// (2 ops per crossed call, frequency weighted), and the callee-save cost
/// (2 ops at entry/exit, entry-frequency weighted). The two benefit
/// functions fall out as differences:
///
///   benefitCaller(lr) = weightedRefs(lr) - callerSaveCost(lr)
///   benefitCallee(lr) = weightedRefs(lr) - calleeSaveCost(lr)
///
//===----------------------------------------------------------------------===//

#ifndef CCRA_REGALLOC_LIVERANGE_H
#define CCRA_REGALLOC_LIVERANGE_H

#include "ir/Function.h"

#include <limits>
#include <vector>

namespace ccra {

class FrequencyInfo;
class Liveness;
class VRegClasses;

/// One call instruction, identified densely within its function.
struct CallSite {
  unsigned Id = 0;
  const BasicBlock *Block = nullptr;
  unsigned InstIndex = 0;
  double Freq = 0.0;
  const Instruction *Inst = nullptr;
};

/// A live range: one register congruence class plus cost metrics.
struct LiveRange {
  static constexpr double InfiniteSpillCost =
      std::numeric_limits<double>::infinity();

  unsigned Id = 0;  ///< Dense index within the LiveRangeSet.
  VirtReg Root;     ///< Congruence-class representative.
  RegBank Bank = RegBank::Int;

  /// Frequency-weighted def+use count. Each reference of a spilled live
  /// range becomes one load or store, so this is exactly the spill cost.
  double WeightedRefs = 0.0;
  /// 2 * sum of frequencies of the calls this live range is live across.
  double CallerSaveCost = 0.0;
  /// 2 * function entry frequency: the save/restore a callee-save register
  /// costs at entry/exit.
  double CalleeSaveCost = 0.0;

  unsigned NumRefs = 0;   ///< Unweighted reference count.
  unsigned NumBlocks = 0; ///< Blocks spanned; "size(lr)" of Chow's priority.

  bool NoSpill = false;         ///< Contains a spill temporary.
  bool ContainsCall = false;    ///< Live across at least one call.
  bool ForcedCallerPref = false; ///< Set by the preference-decision phase.

  /// Ids of the CallSites this range is live across, ascending.
  std::vector<unsigned> CrossedCalls;

  double spillCost() const {
    return NoSpill ? InfiniteSpillCost : WeightedRefs;
  }
  double benefitCaller() const { return WeightedRefs - CallerSaveCost; }
  double benefitCallee() const { return WeightedRefs - CalleeSaveCost; }
};

/// All live ranges of one function in one allocation round, plus the call
/// sites and the vreg -> live-range mapping.
class LiveRangeSet {
public:
  unsigned numRanges() const { return static_cast<unsigned>(Ranges.size()); }

  LiveRange &range(unsigned Id) { return Ranges[Id]; }
  const LiveRange &range(unsigned Id) const { return Ranges[Id]; }

  /// Live-range id of \p R, or -1 if the register never appears in the
  /// code (e.g. it was spilled away in a previous round).
  int rangeIdOf(VirtReg R) const;

  const std::vector<CallSite> &callSites() const { return Calls; }

  std::vector<LiveRange> &ranges() { return Ranges; }
  const std::vector<LiveRange> &ranges() const { return Ranges; }

  /// Appends a live range directly (scenario construction in tests and
  /// tools; regular allocation uses build()). Returns its id.
  unsigned addRange(LiveRange LR);

  /// Appends a call site directly (scenario construction).
  void addCallSite(CallSite CS) { Calls.push_back(std::move(CS)); }

  /// Clears the call-site list (graph reconstruction re-enumerates after
  /// spill code shifted instruction positions).
  void clearCallSites() { Calls.clear(); }

  /// Extends the register -> live-range mapping to \p NumVRegs entries
  /// (new registers unmapped).
  void resizeMapping(unsigned NumVRegs) { VRegToRange.resize(NumVRegs, -1); }

  /// Points register \p R at live range \p RangeId (-1 = no range).
  void mapRegister(VirtReg R, int RangeId) {
    VRegToRange[R.Id] = RangeId;
  }

  /// Builds live ranges for \p F under the congruence classes \p Classes.
  /// \p EntryFreq is the function's invocation frequency.
  static LiveRangeSet build(const Function &F, const Liveness &LV,
                            const FrequencyInfo &Freq,
                            const VRegClasses &Classes);

private:
  std::vector<LiveRange> Ranges;
  std::vector<int> VRegToRange; // by vreg id
  std::vector<CallSite> Calls;
};

} // namespace ccra

#endif // CCRA_REGALLOC_LIVERANGE_H
