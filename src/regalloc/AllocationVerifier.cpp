//===- regalloc/AllocationVerifier.cpp ------------------------------------===//

#include "regalloc/AllocationVerifier.h"

#include "ir/IRPrinter.h"
#include "target/MachineDescription.h"

using namespace ccra;

AllocationVerifyReport ccra::verifyAllocation(const AllocationContext &Ctx,
                                              const RoundResult &RR,
                                              bool SaveRestoreMaterialized) {
  AllocationVerifyReport Report;
  auto Error = [&](std::string Message) {
    Report.Errors.push_back("@" + Ctx.F.getName() + ": " +
                            std::move(Message));
  };

  const LiveRangeSet &LRS = Ctx.LRS;
  if (RR.Assignment.size() != LRS.numRanges()) {
    Error("assignment size does not match live-range count");
    return Report;
  }

  // Every live range has a register of the right bank within the file.
  for (unsigned I = 0; I < LRS.numRanges(); ++I) {
    const LiveRange &LR = LRS.range(I);
    const Location &Loc = RR.Assignment[I];
    if (!Loc.isRegister()) {
      Error("live range " + formatVReg(Ctx.F, LR.Root) +
            " left without a register after convergence");
      continue;
    }
    if (Loc.Reg.Bank != LR.Bank)
      Error("live range " + formatVReg(Ctx.F, LR.Root) +
            " assigned a register of the wrong bank");
    if (Loc.Reg.Index >= Ctx.MD.numRegs(LR.Bank))
      Error("live range " + formatVReg(Ctx.F, LR.Root) +
            " assigned a register outside the configured file");
  }

  // Interfering live ranges get different registers.
  for (unsigned A = 0; A < LRS.numRanges(); ++A) {
    for (unsigned B : Ctx.IG.neighbors(A)) {
      if (B <= A)
        continue;
      const Location &LocA = RR.Assignment[A];
      const Location &LocB = RR.Assignment[B];
      if (LocA.isRegister() && LocB.isRegister() && LocA.Reg == LocB.Reg)
        Error("interfering live ranges " + formatVReg(Ctx.F, LRS.range(A).Root) +
              " and " + formatVReg(Ctx.F, LRS.range(B).Root) +
              " share register " + formatPhysReg(LocA.Reg));
    }
  }

  // Save/Restore pairing around calls: each call must be immediately
  // preceded by Saves and followed by Restores of the same caller-save
  // register set.
  if (SaveRestoreMaterialized) {
    for (const auto &BB : Ctx.F.blocks()) {
      const auto &Insts = BB->instructions();
      for (size_t Idx = 0; Idx < Insts.size(); ++Idx) {
        if (!Insts[Idx].isCall())
          continue;
        std::vector<PhysReg> Saved;
        for (size_t J = Idx; J-- > 0;) {
          if (Insts[J].Op == Opcode::Save &&
              Insts[J].Overhead == OverheadKind::CallerSave)
            Saved.push_back(Insts[J].Phys);
          else
            break;
        }
        std::vector<PhysReg> Restored;
        for (size_t J = Idx + 1; J < Insts.size(); ++J) {
          if (Insts[J].Op == Opcode::Restore &&
              Insts[J].Overhead == OverheadKind::CallerSave)
            Restored.push_back(Insts[J].Phys);
          else
            break;
        }
        if (Saved.size() != Restored.size())
          Error("call in block " + BB->getName() +
                " has mismatched save/restore counts");
        for (PhysReg Reg : Saved) {
          bool Found = false;
          for (PhysReg Other : Restored)
            Found |= (Other == Reg);
          if (!Found)
            Error("register " + formatPhysReg(Reg) + " saved but not restored around a call in block " +
                  BB->getName());
        }
      }
    }
  }
  return Report;
}
