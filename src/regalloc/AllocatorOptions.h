//===- regalloc/AllocatorOptions.h - Allocator configuration ----*- C++ -*-===//
///
/// \file
/// Every register-allocation approach the paper evaluates is a point in
/// this option space: base/optimistic/improved Chaitin-style coloring,
/// priority-based coloring with its three color-ordering heuristics, and
/// the CBH call-cost model. The factory helpers name the exact
/// configurations used by the reproduction benchmarks.
///
//===----------------------------------------------------------------------===//

#ifndef CCRA_REGALLOC_ALLOCATOROPTIONS_H
#define CCRA_REGALLOC_ALLOCATOROPTIONS_H

#include "regalloc/GraphRep.h"

#include <string>

namespace ccra {

enum class AllocatorKind {
  Chaitin,  ///< Base model (§3.1); Optimistic flag selects Briggs coloring.
  Improved, ///< Chaitin + the paper's SC/BS/PR enhancements (§4-6).
  Priority, ///< Chow's priority-based coloring without splitting (§9).
  CBH,      ///< Chaitin/Briggs/Hierarchical call-cost model (§10).
};

/// The two orderings of §5 for benefit-driven simplification.
enum class BenefitKeyStrategy {
  /// Strategy 1: max(benefitCaller, benefitCallee) — the priority-based
  /// key, shown by the paper to be the wrong fit for Chaitin coloring.
  MaxBenefit,
  /// Strategy 2: |benefitCaller - benefitCallee| when both benefits are
  /// non-negative (the penalty of getting the wrong kind of register),
  /// max of the two otherwise. The paper's choice.
  Delta,
};

/// The two callee-save cost models of §4.
enum class CalleeCostModel {
  /// The first live range to use a callee-save register pays the whole
  /// save/restore cost and is spilled when benefitCallee < 0.
  FirstUserPays,
  /// The cost is shared by every user of the register: after color
  /// assignment, all users of a register r are spilled together iff the sum
  /// of their spill costs is below calleeCost(r). The paper's better model.
  Shared,
};

/// The three color-ordering heuristics for priority-based coloring (§9.1).
enum class PriorityOrdering {
  RemoveUnconstrained, ///< Chow's original: peel unconstrained, sort rest.
  SortUnconstrained,   ///< Peel unconstrained in priority order too.
  FullSort,            ///< Pure priority sort. The paper's choice.
};

struct AllocatorOptions {
  AllocatorKind Kind = AllocatorKind::Improved;

  /// Briggs optimistic coloring: blocked live ranges are pushed anyway and
  /// spill only if color assignment actually fails (§8).
  bool Optimistic = false;

  // The three improvements (only honored by AllocatorKind::Improved).
  bool StorageClass = true;       ///< §4
  bool BenefitSimplify = true;    ///< §5
  bool PreferenceDecision = true; ///< §6

  BenefitKeyStrategy BSKey = BenefitKeyStrategy::Delta;
  CalleeCostModel CalleeModel = CalleeCostModel::Shared;
  PriorityOrdering Ordering = PriorityOrdering::FullSort;

  /// Coalesce copies aggressively (ignore the conservative degree test).
  bool AggressiveCoalescing = false;

  /// Materialize save/restore instructions after allocation (the cost
  /// accounting works either way; materialization enables inspection and
  /// the post-allocation verifier's pairing checks).
  bool MaterializeSaveRestore = true;

  /// Run the allocation verifier after convergence.
  bool Verify = true;

  /// With Verify on, collect verifier failures into
  /// FunctionAllocation::VerifyErrors instead of aborting the process. The
  /// differential fuzz harness runs with this set so a soundness violation
  /// becomes a reported (and shrinkable) finding rather than a crash.
  bool VerifyReportOnly = false;

  /// Graph reconstruction (§2): when a retry round cannot coalesce anything
  /// anyway (the function has no copies left), patch the liveness /
  /// live-range / interference-graph state incrementally instead of
  /// recomputing it — the paper's compile-time optimization. Results are
  /// identical either way (equivalence-tested).
  bool IncrementalReconstruction = true;

  /// Maintain liveness incrementally: the coalescer renames/patches the
  /// solution across its passes (at most one full dataflow run per round,
  /// zero when the harness seeds the baseline from a ModuleAnalysisCache),
  /// and the engine carries it across spill rewrites. Results are
  /// identical either way (equivalence-tested); off reproduces the
  /// recompute-per-pass behavior for comparison benchmarks.
  bool IncrementalLiveness = true;

  /// Recycle per-worker scratch buffers (block-scan bit vectors and lists,
  /// coalescer sweep marks, spill-index maps) across blocks, passes,
  /// rounds, and functions instead of allocating them per use. Purely an
  /// allocation-churn optimization; results are bit-identical.
  bool ScratchArenas = true;

  /// Interference-graph representation: Auto switches from the dense bit
  /// matrix to sparse adjacency above InterferenceGraph::DenseNodeThreshold
  /// nodes. Dense/Sparse force one representation (equivalence tests, memory
  /// experiments). Results are bit-identical at any setting.
  GraphRep GraphMode = GraphRep::Auto;

  /// Use the retained O(V^2) reference simplifier instead of the worklist
  /// one. Results are bit-identical (equivalence-tested); this exists for
  /// the perf_grid legacy arm and as a fallback while triaging.
  bool LegacySimplifier = false;

  /// Safety cap on spill-and-retry rounds.
  unsigned MaxRounds = 64;

  /// Concurrent function allocations in allocateModule: 1 = serial (the
  /// escape hatch; default), 0 = one job per hardware thread, N = exactly
  /// N jobs. Results are bit-identical at any setting; the engine reduces
  /// per-function results in function order.
  unsigned Jobs = 1;

  /// Short human-readable tag ("base", "opt", "SC+BS+PR", ...).
  std::string describe() const;

  /// The one true cache/serialization form: a fixed-order `key=value` line
  /// covering ONLY the fields that can change the allocation *result*
  /// (assignment, costs, emitted IR) — Kind, Optimistic, the three
  /// improvements, BSKey, CalleeModel, Ordering, AggressiveCoalescing,
  /// MaterializeSaveRestore, MaxRounds. Execution-strategy fields (Jobs,
  /// GraphMode, ScratchArenas, IncrementalLiveness/Reconstruction,
  /// LegacySimplifier, Verify, VerifyReportOnly) are excluded: the oracle
  /// lattice (tools/ccra_fuzz) holds results bit-identical across all of
  /// them, so two options differing only there MUST share a key. The form
  /// is order- and default-insensitive by construction (fixed order, every
  /// included field always emitted) and parses back through
  /// parseAllocatorOptions (omitted fields keep their defaults).
  /// Property-tested in tests/PropertyTest.cpp: semantically equal options
  /// produce equal keys and every behavior-affecting field perturbs the
  /// key. The wire protocol and the content-addressed allocation cache
  /// (service/AllocationCache.h) both key on this form.
  std::string canonicalKey() const;

  bool operator==(const AllocatorOptions &Other) const = default;
};

/// Full one-line textual form of \p Opts: every field emitted as
/// `key=value`, space-separated, in a fixed order. Fuzz reproducer headers
/// embed this form (they must replay the exact execution configuration,
/// not just the behavior); parseAllocatorOptions reproduces the exact
/// struct (property-tested over the full option space in
/// tests/PropertyTest.cpp). The wire protocol ships
/// AllocatorOptions::canonicalKey() instead — behavior-affecting fields
/// only.
std::string serializeAllocatorOptions(const AllocatorOptions &Opts);

/// Parses text produced by serializeAllocatorOptions. Tokens may appear in
/// any order; omitted fields keep their defaults (so the format can grow
/// fields without breaking old clients); an unknown key, malformed token,
/// or bad value fails. Returns false (leaving \p Out in an unspecified
/// state) on failure, with a diagnostic in \p Err when non-null.
bool parseAllocatorOptions(const std::string &Text, AllocatorOptions &Out,
                           std::string *Err = nullptr);

// Named configurations used by the reproduction experiments. ------------

/// The base Chaitin-style model of §3.1.
AllocatorOptions baseChaitinOptions();
/// Briggs optimistic coloring on the base cost model (§8).
AllocatorOptions optimisticOptions();
/// Improved Chaitin-style coloring with any subset of the enhancements.
AllocatorOptions improvedOptions(bool StorageClass = true,
                                 bool BenefitSimplify = true,
                                 bool PreferenceDecision = true);
/// Improved Chaitin-style + optimistic simplification (Fig. 9 hybrid).
AllocatorOptions improvedOptimisticOptions();
/// Priority-based coloring (§9) with the given color ordering.
AllocatorOptions priorityOptions(
    PriorityOrdering Ordering = PriorityOrdering::FullSort);
/// The CBH model (§10).
AllocatorOptions cbhOptions();

} // namespace ccra

#endif // CCRA_REGALLOC_ALLOCATOROPTIONS_H
