//===- regalloc/CostAccounting.cpp ----------------------------------------===//

#include "regalloc/CostAccounting.h"

#include "analysis/Frequency.h"
#include "regalloc/OverheadMaterializer.h"
#include "target/MachineDescription.h"

#include <algorithm>

using namespace ccra;

CostBreakdown ccra::measureCostFromCode(const Function &F,
                                        const FrequencyInfo &Freq) {
  CostBreakdown Costs;
  for (const auto &BB : F.blocks()) {
    double BlockFreq = Freq.blockFrequency(*BB);
    for (const Instruction &I : BB->instructions()) {
      switch (I.Overhead) {
      case OverheadKind::None:
        break;
      case OverheadKind::Spill:
        Costs.Spill += BlockFreq;
        break;
      case OverheadKind::CallerSave:
        Costs.CallerSave += BlockFreq;
        break;
      case OverheadKind::CalleeSave:
        Costs.CalleeSave += BlockFreq;
        break;
      case OverheadKind::Shuffle:
        Costs.Shuffle += BlockFreq;
        break;
      }
    }
  }
  return Costs;
}

CostBreakdown ccra::computeAnalyticCost(const AllocationContext &Ctx,
                                        const RoundResult &RR) {
  CostBreakdown Costs;

  // Spill component: the spill code is real code by now; weigh it.
  for (const auto &BB : Ctx.F.blocks()) {
    double BlockFreq = Ctx.Freq.blockFrequency(*BB);
    for (const Instruction &I : BB->instructions()) {
      if (I.Overhead == OverheadKind::Spill)
        Costs.Spill += BlockFreq;
      else if (I.Overhead == OverheadKind::Shuffle)
        Costs.Shuffle += BlockFreq;
    }
  }

  // Caller-save component: one save + restore per (call, caller-save
  // register) pair, matching what the materializer emits. Summing each
  // range's CallerSaveCost instead would overcharge: two copy-related
  // ranges that never interfere (the move exception) can legally share a
  // register across the same call — they hold the same value there — and
  // that register is saved once, not once per range.
  std::vector<std::vector<PhysReg>> RegsPerCall(Ctx.LRS.callSites().size());
  for (unsigned I = 0; I < Ctx.LRS.numRanges(); ++I) {
    const Location &Loc = RR.Assignment[I];
    if (!Loc.isRegister() || !Ctx.MD.isCallerSave(Loc.Reg))
      continue;
    for (unsigned CallId : Ctx.LRS.range(I).CrossedCalls) {
      auto &Regs = RegsPerCall[CallId];
      if (std::find(Regs.begin(), Regs.end(), Loc.Reg) == Regs.end())
        Regs.push_back(Loc.Reg);
    }
  }
  for (const CallSite &CS : Ctx.LRS.callSites())
    Costs.CallerSave +=
        2.0 * CS.Freq * static_cast<double>(RegsPerCall[CS.Id].size());

  // Callee-save component: 2 x entryFreq per paid register.
  Costs.CalleeSave +=
      2.0 * Ctx.EntryFreq *
      static_cast<double>(OverheadMaterializer::paidCalleeRegs(Ctx, RR).size());

  return Costs;
}
