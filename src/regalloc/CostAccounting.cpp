//===- regalloc/CostAccounting.cpp ----------------------------------------===//

#include "regalloc/CostAccounting.h"

#include "analysis/Frequency.h"
#include "regalloc/OverheadMaterializer.h"
#include "target/MachineDescription.h"

using namespace ccra;

CostBreakdown ccra::measureCostFromCode(const Function &F,
                                        const FrequencyInfo &Freq) {
  CostBreakdown Costs;
  for (const auto &BB : F.blocks()) {
    double BlockFreq = Freq.blockFrequency(*BB);
    for (const Instruction &I : BB->instructions()) {
      switch (I.Overhead) {
      case OverheadKind::None:
        break;
      case OverheadKind::Spill:
        Costs.Spill += BlockFreq;
        break;
      case OverheadKind::CallerSave:
        Costs.CallerSave += BlockFreq;
        break;
      case OverheadKind::CalleeSave:
        Costs.CalleeSave += BlockFreq;
        break;
      case OverheadKind::Shuffle:
        Costs.Shuffle += BlockFreq;
        break;
      }
    }
  }
  return Costs;
}

CostBreakdown ccra::computeAnalyticCost(const AllocationContext &Ctx,
                                        const RoundResult &RR) {
  CostBreakdown Costs;

  // Spill component: the spill code is real code by now; weigh it.
  for (const auto &BB : Ctx.F.blocks()) {
    double BlockFreq = Ctx.Freq.blockFrequency(*BB);
    for (const Instruction &I : BB->instructions()) {
      if (I.Overhead == OverheadKind::Spill)
        Costs.Spill += BlockFreq;
      else if (I.Overhead == OverheadKind::Shuffle)
        Costs.Shuffle += BlockFreq;
    }
  }

  // Caller-save component: each live range in a caller-save register pays
  // a save + restore around every call it crosses — which is exactly its
  // CallerSaveCost metric.
  for (unsigned I = 0; I < Ctx.LRS.numRanges(); ++I) {
    const Location &Loc = RR.Assignment[I];
    if (Loc.isRegister() && Ctx.MD.isCallerSave(Loc.Reg))
      Costs.CallerSave += Ctx.LRS.range(I).CallerSaveCost;
  }

  // Callee-save component: 2 x entryFreq per paid register.
  Costs.CalleeSave +=
      2.0 * Ctx.EntryFreq *
      static_cast<double>(OverheadMaterializer::paidCalleeRegs(Ctx, RR).size());

  return Costs;
}
