//===- regalloc/InterferenceGraph.h - Conflict graph ------------*- C++ -*-===//
///
/// \file
/// The interference graph of the Chaitin framework: nodes are live ranges,
/// edges connect live ranges that are simultaneously live (within the same
/// register bank — live ranges in different banks never compete for a
/// register, so no edges are needed between them). A triangular bit matrix
/// gives O(1) interference queries; adjacency vectors drive simplification.
///
/// Copy instructions get the classic Chaitin special case: at "move d <- s"
/// no edge is added between d and s, which is what makes them coalescable.
///
//===----------------------------------------------------------------------===//

#ifndef CCRA_REGALLOC_INTERFERENCEGRAPH_H
#define CCRA_REGALLOC_INTERFERENCEGRAPH_H

#include "regalloc/LiveRange.h"
#include "support/BitVector.h"

#include <vector>

namespace ccra {

class AllocationScratch;
class Liveness;

class InterferenceGraph {
public:
  InterferenceGraph() = default;
  explicit InterferenceGraph(unsigned NumNodes);

  unsigned numNodes() const { return static_cast<unsigned>(Adj.size()); }

  /// Adds an undirected edge (idempotent, ignores self loops).
  void addEdge(unsigned A, unsigned B);

  bool interfere(unsigned A, unsigned B) const;

  const std::vector<unsigned> &neighbors(unsigned Node) const {
    return Adj[Node];
  }
  unsigned degree(unsigned Node) const {
    return static_cast<unsigned>(Adj[Node].size());
  }

  /// Total number of undirected edges. O(1): addEdge maintains the count.
  size_t numEdges() const { return NumEdges; }

  /// Builds the graph for \p F from liveness and the live-range set.
  /// \p Scratch, when given, supplies the per-block scan buffers (one
  /// internal arena is used otherwise).
  static InterferenceGraph build(const Function &F, const Liveness &LV,
                                 const LiveRangeSet &LRS,
                                 AllocationScratch *Scratch = nullptr);

  /// Adds every interference edge arising within \p BB (given its live-out
  /// set) to \p IG. Idempotent; the incremental graph reconstruction uses
  /// it to rescan only the blocks spill code touched. \p Scratch, when
  /// given, supplies the scan buffers instead of per-call allocations.
  static void scanBlockForEdges(const Function &F, const BasicBlock &BB,
                                const BitVector &LiveOut,
                                const LiveRangeSet &LRS,
                                InterferenceGraph &IG,
                                AllocationScratch *Scratch = nullptr);

private:
  size_t matrixIndex(unsigned A, unsigned B) const;

  std::vector<std::vector<unsigned>> Adj;
  BitVector Matrix; // strict lower triangle
  size_t NumEdges = 0;
};

} // namespace ccra

#endif // CCRA_REGALLOC_INTERFERENCEGRAPH_H
