//===- regalloc/InterferenceGraph.h - Conflict graph ------------*- C++ -*-===//
///
/// \file
/// The interference graph of the Chaitin framework: nodes are live ranges,
/// edges connect live ranges that are simultaneously live (within the same
/// register bank — live ranges in different banks never compete for a
/// register, so no edges are needed between them).
///
/// The edge relation is stored in one of two representations behind a single
/// query API (GraphRep):
///
///  - Dense: a strict-lower-triangle bit matrix. O(1) `interfere` and edge
///    dedup, but V*(V-1)/2 bits of memory — quadratic in the node count.
///  - Sparse: per-node adjacency only. While building, a hash set of packed
///    (min,max) edge keys provides dedup and O(1) `interfere`; `finalize()`
///    sorts the adjacency lists, drops the hash set, and switches
///    `interfere` to a binary search of the smaller endpoint's list.
///
/// Auto policy picks Dense below DenseNodeThreshold nodes and Sparse above
/// it, so per-function cost scales with V+E instead of V^2 on large
/// functions. Both representations expose *identical* adjacency: finalize()
/// canonicalizes neighbor lists to ascending order (build() and the graph
/// reconstructor finalize for you), so every consumer — Simplifier,
/// Coalescer, GraphReconstructor, CBHAllocator, AllocationVerifier — is
/// representation-agnostic and allocation results are bit-identical under
/// every policy.
///
/// Copy instructions get the classic Chaitin special case: at "move d <- s"
/// no edge is added between d and s, which is what makes them coalescable.
///
//===----------------------------------------------------------------------===//

#ifndef CCRA_REGALLOC_INTERFERENCEGRAPH_H
#define CCRA_REGALLOC_INTERFERENCEGRAPH_H

#include "regalloc/GraphRep.h"
#include "regalloc/LiveRange.h"
#include "support/BitVector.h"

#include <unordered_set>
#include <vector>

namespace ccra {

class AllocationScratch;
class Liveness;

class InterferenceGraph {
public:
  /// Auto switches from the bit matrix to sparse adjacency above this node
  /// count. At the threshold the matrix holds ~8M bits (1 MiB) — still
  /// cheap to zero; one step further doubles per-function memory for no
  /// query-speed win the allocator can measure.
  static constexpr unsigned DenseNodeThreshold = 4096;

  InterferenceGraph() = default;
  /// \p Scratch, when given, donates recycled buffer capacity (adjacency
  /// lists, matrix words, edge-set buckets) instead of fresh allocations.
  explicit InterferenceGraph(unsigned NumNodes,
                             GraphRep Policy = GraphRep::Auto,
                             AllocationScratch *Scratch = nullptr);

  unsigned numNodes() const { return static_cast<unsigned>(Adj.size()); }

  /// Adds an undirected edge (idempotent, ignores self loops).
  void addEdge(unsigned A, unsigned B);

  bool interfere(unsigned A, unsigned B) const;

  const std::vector<unsigned> &neighbors(unsigned Node) const {
    return Adj[Node];
  }
  unsigned degree(unsigned Node) const {
    return static_cast<unsigned>(Adj[Node].size());
  }

  /// Total number of undirected edges. O(1): addEdge maintains the count.
  size_t numEdges() const { return NumEdges; }

  /// The policy this graph was created with (Auto/Dense/Sparse); the graph
  /// reconstructor propagates it so a forced representation survives spill
  /// rounds.
  GraphRep policy() const { return Policy; }
  /// The representation actually in use (never Auto).
  GraphRep activeRep() const {
    return Dense ? GraphRep::Dense : GraphRep::Sparse;
  }

  /// Canonicalizes the adjacency lists to ascending node order (identical
  /// across representations) and, in sparse mode, releases the build-time
  /// edge hash set in favor of binary-search `interfere`. Idempotent.
  /// Queries work before and after; addEdge after finalize transparently
  /// re-opens the build state. \p S, when given, receives the released
  /// sparse edge-set buckets for the next build.
  void finalize(AllocationScratch *S = nullptr);

  /// Approximate heap bytes held by the graph (adjacency capacity, matrix
  /// words, edge-set buckets) — feeds the alloc.peak_graph_bytes counter.
  size_t memoryBytes() const;

  /// Returns the internal buffers' capacity to \p S so the next graph built
  /// with that scratch starts from recycled storage. Leaves this graph
  /// empty.
  void recycle(AllocationScratch &S);

  /// Builds the graph for \p F from liveness and the live-range set.
  /// \p Scratch, when given, supplies the per-block scan buffers and
  /// recycled graph storage (one internal arena is used otherwise). The
  /// returned graph is finalized.
  static InterferenceGraph build(const Function &F, const Liveness &LV,
                                 const LiveRangeSet &LRS,
                                 AllocationScratch *Scratch = nullptr,
                                 GraphRep Policy = GraphRep::Auto);

  /// Adds every interference edge arising within \p BB (given its live-out
  /// set) to \p IG. Idempotent; the incremental graph reconstruction uses
  /// it to rescan only the blocks spill code touched. \p Scratch, when
  /// given, supplies the scan buffers instead of per-call allocations.
  static void scanBlockForEdges(const Function &F, const BasicBlock &BB,
                                const BitVector &LiveOut,
                                const LiveRangeSet &LRS,
                                InterferenceGraph &IG,
                                AllocationScratch *Scratch = nullptr);

private:
  size_t matrixIndex(unsigned A, unsigned B) const;
  static uint64_t edgeKey(unsigned A, unsigned B) {
    if (A > B)
      std::swap(A, B);
    return (static_cast<uint64_t>(A) << 32) | B;
  }
  /// Sparse mode: rebuilds EdgeSet from the adjacency lists (used when
  /// addEdge is called on a finalized graph).
  void reopenEdgeSet();

  std::vector<std::vector<unsigned>> Adj;
  BitVector Matrix;                    // dense: strict lower triangle
  std::unordered_set<uint64_t> EdgeSet; // sparse: dedup until finalize()
  size_t NumEdges = 0;
  GraphRep Policy = GraphRep::Auto;
  bool Dense = true;
  bool Finalized = false;
};

} // namespace ccra

#endif // CCRA_REGALLOC_INTERFERENCEGRAPH_H
