//===- regalloc/InterferenceGraph.cpp -------------------------------------===//

#include "regalloc/InterferenceGraph.h"

#include "analysis/Liveness.h"
#include "regalloc/AllocationScratch.h"

#include <cassert>

using namespace ccra;

InterferenceGraph::InterferenceGraph(unsigned NumNodes) {
  Adj.resize(NumNodes);
  size_t Bits =
      NumNodes == 0 ? 0 : static_cast<size_t>(NumNodes) * (NumNodes - 1) / 2;
  Matrix.resize(static_cast<unsigned>(Bits));
}

size_t InterferenceGraph::matrixIndex(unsigned A, unsigned B) const {
  assert(A != B && "self edge has no matrix slot");
  if (A > B)
    std::swap(A, B);
  return static_cast<size_t>(B) * (B - 1) / 2 + A;
}

void InterferenceGraph::addEdge(unsigned A, unsigned B) {
  assert(A < numNodes() && B < numNodes() && "node out of range");
  if (A == B)
    return;
  size_t Idx = matrixIndex(A, B);
  if (Matrix.test(static_cast<unsigned>(Idx)))
    return;
  Matrix.set(static_cast<unsigned>(Idx));
  Adj[A].push_back(B);
  Adj[B].push_back(A);
  ++NumEdges;
}

bool InterferenceGraph::interfere(unsigned A, unsigned B) const {
  if (A == B)
    return false;
  return Matrix.test(static_cast<unsigned>(matrixIndex(A, B)));
}

void InterferenceGraph::scanBlockForEdges(const Function &F,
                                          const BasicBlock &BB,
                                          const BitVector &LiveOut,
                                          const LiveRangeSet &LRS,
                                          InterferenceGraph &IG,
                                          AllocationScratch *Scratch) {
  // Liveness is tracked at vreg granularity (Live); a live *range* is live
  // while any member vreg is, maintained as a per-range count plus a dense
  // list of currently live ranges for fast iteration at defs.
  AllocationScratch Local;
  AllocationScratch &S = Scratch ? *Scratch : Local;
  BitVector &Live = S.liveBits(F.numVRegs());
  std::vector<unsigned> &LiveCount = S.rangeLiveCount(LRS.numRanges());
  std::vector<unsigned> &LiveList = S.rangeLiveList();

  auto VRegBecameLive = [&](unsigned V) {
    unsigned R = static_cast<unsigned>(LRS.rangeIdOf(VirtReg(V)));
    if (LiveCount[R]++ == 0)
      LiveList.push_back(R);
  };
  auto VRegBecameDead = [&](unsigned V) {
    unsigned R = static_cast<unsigned>(LRS.rangeIdOf(VirtReg(V)));
    assert(LiveCount[R] > 0 && "kill of dead range");
    if (--LiveCount[R] == 0) {
      for (auto It = LiveList.begin(), E = LiveList.end(); It != E; ++It)
        if (*It == R) {
          *It = LiveList.back();
          LiveList.pop_back();
          break;
        }
    }
  };

  for (unsigned V : LiveOut) {
    Live.set(V);
    VRegBecameLive(V);
  }

  const auto &Insts = BB.instructions();
  for (auto It = Insts.rbegin(), E = Insts.rend(); It != E; ++It) {
    const Instruction &I = *It;
    int MoveSrcRange = I.isMove() ? LRS.rangeIdOf(I.moveSource()) : -1;

    // A def conflicts with everything live after the instruction — except,
    // for a copy, its own source (Chaitin's coalescing-enabling special
    // case).
    for (VirtReg D : I.Defs) {
      unsigned DefRange = static_cast<unsigned>(LRS.rangeIdOf(D));
      RegBank DefBank = LRS.range(DefRange).Bank;
      for (unsigned Other : LiveList) {
        if (Other == DefRange || static_cast<int>(Other) == MoveSrcRange)
          continue;
        if (LRS.range(Other).Bank != DefBank)
          continue;
        IG.addEdge(DefRange, Other);
      }
    }
    // Multiple results of one instruction conflict with each other.
    for (size_t A = 0; A + 1 < I.Defs.size(); ++A)
      for (size_t B = A + 1; B < I.Defs.size(); ++B) {
        unsigned RA = static_cast<unsigned>(LRS.rangeIdOf(I.Defs[A]));
        unsigned RB = static_cast<unsigned>(LRS.rangeIdOf(I.Defs[B]));
        if (RA != RB && LRS.range(RA).Bank == LRS.range(RB).Bank)
          IG.addEdge(RA, RB);
      }

    // Step the live set backward across the instruction.
    for (VirtReg D : I.Defs)
      if (Live.test(D.Id)) {
        Live.reset(D.Id);
        VRegBecameDead(D.Id);
      }
    for (VirtReg U : I.Uses)
      if (!Live.test(U.Id)) {
        Live.set(U.Id);
        VRegBecameLive(U.Id);
      }
  }
}

InterferenceGraph InterferenceGraph::build(const Function &F,
                                           const Liveness &LV,
                                           const LiveRangeSet &LRS,
                                           AllocationScratch *Scratch) {
  // Even without a caller-provided arena, share one across the blocks of
  // this build instead of allocating per block.
  AllocationScratch Local;
  AllocationScratch &S = Scratch ? *Scratch : Local;
  InterferenceGraph IG(LRS.numRanges());
  for (const auto &BB : F.blocks())
    scanBlockForEdges(F, *BB, LV.liveOut(*BB), LRS, IG, &S);
  return IG;
}
