//===- regalloc/InterferenceGraph.cpp -------------------------------------===//

#include "regalloc/InterferenceGraph.h"

#include "analysis/Liveness.h"
#include "regalloc/AllocationScratch.h"

#include <algorithm>
#include <cassert>

using namespace ccra;

InterferenceGraph::InterferenceGraph(unsigned NumNodes, GraphRep Policy,
                                     AllocationScratch *Scratch)
    : Policy(Policy) {
  Dense = Policy == GraphRep::Dense ||
          (Policy == GraphRep::Auto && NumNodes <= DenseNodeThreshold);
  if (Scratch) {
    Adj = Scratch->takeGraphAdj();
    if (Dense)
      Matrix = Scratch->takeGraphMatrix();
    else
      EdgeSet = Scratch->takeGraphEdgeSet();
  }
  // Recycled adjacency keeps per-node capacity; trim or grow to NumNodes
  // with every kept list emptied.
  if (Adj.size() > NumNodes)
    Adj.resize(NumNodes);
  for (auto &List : Adj)
    List.clear();
  Adj.resize(NumNodes);
  if (Dense) {
    size_t Bits =
        NumNodes == 0 ? 0 : static_cast<size_t>(NumNodes) * (NumNodes - 1) / 2;
    Matrix.resize(Bits);
    Matrix.resetAll();
  }
}

size_t InterferenceGraph::matrixIndex(unsigned A, unsigned B) const {
  assert(A != B && "self edge has no matrix slot");
  if (A > B)
    std::swap(A, B);
  return static_cast<size_t>(B) * (B - 1) / 2 + A;
}

void InterferenceGraph::reopenEdgeSet() {
  EdgeSet.reserve(NumEdges + NumEdges / 2);
  for (unsigned A = 0; A < Adj.size(); ++A)
    for (unsigned B : Adj[A])
      if (A < B)
        EdgeSet.insert(edgeKey(A, B));
}

void InterferenceGraph::addEdge(unsigned A, unsigned B) {
  assert(A < numNodes() && B < numNodes() && "node out of range");
  if (A == B)
    return;
  if (Dense) {
    size_t Idx = matrixIndex(A, B);
    if (Matrix.test(Idx))
      return;
    Matrix.set(Idx);
  } else {
    if (Finalized)
      reopenEdgeSet();
    if (!EdgeSet.insert(edgeKey(A, B)).second)
      return;
  }
  Finalized = false;
  Adj[A].push_back(B);
  Adj[B].push_back(A);
  ++NumEdges;
}

bool InterferenceGraph::interfere(unsigned A, unsigned B) const {
  if (A == B)
    return false;
  if (Dense)
    return Matrix.test(matrixIndex(A, B));
  if (!Finalized)
    return EdgeSet.count(edgeKey(A, B)) != 0;
  // Finalized sparse: binary search the shorter endpoint's sorted list.
  bool AShorter = Adj[A].size() <= Adj[B].size();
  const std::vector<unsigned> &List = AShorter ? Adj[A] : Adj[B];
  unsigned Target = AShorter ? B : A;
  return std::binary_search(List.begin(), List.end(), Target);
}

void InterferenceGraph::finalize(AllocationScratch *S) {
  if (!Finalized)
    for (auto &List : Adj)
      std::sort(List.begin(), List.end());
  if (!Dense && EdgeSet.bucket_count() > 0) {
    EdgeSet.clear();
    if (S)
      S->storeGraphEdgeSet(std::move(EdgeSet));
    EdgeSet = std::unordered_set<uint64_t>();
  }
  Finalized = true;
}

size_t InterferenceGraph::memoryBytes() const {
  size_t Bytes = Adj.capacity() * sizeof(std::vector<unsigned>);
  for (const auto &List : Adj)
    Bytes += List.capacity() * sizeof(unsigned);
  Bytes += Matrix.memoryBytes();
  Bytes += EdgeSet.bucket_count() * sizeof(void *) +
           EdgeSet.size() * (sizeof(uint64_t) + 2 * sizeof(void *));
  return Bytes;
}

void InterferenceGraph::recycle(AllocationScratch &S) {
  S.storeGraphAdj(std::move(Adj));
  Adj = std::vector<std::vector<unsigned>>();
  if (Dense) {
    S.storeGraphMatrix(std::move(Matrix));
    Matrix = BitVector();
  } else if (EdgeSet.bucket_count() > 0) {
    S.storeGraphEdgeSet(std::move(EdgeSet));
    EdgeSet = std::unordered_set<uint64_t>();
  }
  NumEdges = 0;
  Finalized = false;
}

void InterferenceGraph::scanBlockForEdges(const Function &F,
                                          const BasicBlock &BB,
                                          const BitVector &LiveOut,
                                          const LiveRangeSet &LRS,
                                          InterferenceGraph &IG,
                                          AllocationScratch *Scratch) {
  // Liveness is tracked at vreg granularity (Live); a live *range* is live
  // while any member vreg is, maintained as a per-range count plus a dense
  // list of currently live ranges (with a position index for O(1) removal)
  // for fast iteration at defs.
  AllocationScratch Local;
  AllocationScratch &S = Scratch ? *Scratch : Local;
  BitVector &Live = S.liveBits(F.numVRegs());
  std::vector<unsigned> &LiveCount = S.rangeLiveCount(LRS.numRanges());
  std::vector<unsigned> &LiveList = S.rangeLiveList();
  std::vector<unsigned> &LivePos = S.rangeLivePos(LRS.numRanges());

  auto VRegBecameLive = [&](unsigned V) {
    unsigned R = static_cast<unsigned>(LRS.rangeIdOf(VirtReg(V)));
    if (LiveCount[R]++ == 0) {
      LivePos[R] = static_cast<unsigned>(LiveList.size());
      LiveList.push_back(R);
    }
  };
  auto VRegBecameDead = [&](unsigned V) {
    unsigned R = static_cast<unsigned>(LRS.rangeIdOf(VirtReg(V)));
    assert(LiveCount[R] > 0 && "kill of dead range");
    if (--LiveCount[R] == 0) {
      // Swap-remove via the position index: same list mutation the old
      // linear scan performed, without the O(LiveList) search.
      unsigned Pos = LivePos[R];
      unsigned Last = LiveList.back();
      LiveList[Pos] = Last;
      LivePos[Last] = Pos;
      LiveList.pop_back();
    }
  };

  for (unsigned V : LiveOut) {
    Live.set(V);
    VRegBecameLive(V);
  }

  const auto &Insts = BB.instructions();
  for (auto It = Insts.rbegin(), E = Insts.rend(); It != E; ++It) {
    const Instruction &I = *It;
    int MoveSrcRange = I.isMove() ? LRS.rangeIdOf(I.moveSource()) : -1;

    // A def conflicts with everything live after the instruction — except,
    // for a copy, its own source (Chaitin's coalescing-enabling special
    // case).
    for (VirtReg D : I.Defs) {
      unsigned DefRange = static_cast<unsigned>(LRS.rangeIdOf(D));
      RegBank DefBank = LRS.range(DefRange).Bank;
      for (unsigned Other : LiveList) {
        if (Other == DefRange || static_cast<int>(Other) == MoveSrcRange)
          continue;
        if (LRS.range(Other).Bank != DefBank)
          continue;
        IG.addEdge(DefRange, Other);
      }
    }
    // Multiple results of one instruction conflict with each other.
    for (size_t A = 0; A + 1 < I.Defs.size(); ++A)
      for (size_t B = A + 1; B < I.Defs.size(); ++B) {
        unsigned RA = static_cast<unsigned>(LRS.rangeIdOf(I.Defs[A]));
        unsigned RB = static_cast<unsigned>(LRS.rangeIdOf(I.Defs[B]));
        if (RA != RB && LRS.range(RA).Bank == LRS.range(RB).Bank)
          IG.addEdge(RA, RB);
      }

    // Step the live set backward across the instruction.
    for (VirtReg D : I.Defs)
      if (Live.test(D.Id)) {
        Live.reset(D.Id);
        VRegBecameDead(D.Id);
      }
    for (VirtReg U : I.Uses)
      if (!Live.test(U.Id)) {
        Live.set(U.Id);
        VRegBecameLive(U.Id);
      }
  }
}

InterferenceGraph InterferenceGraph::build(const Function &F,
                                           const Liveness &LV,
                                           const LiveRangeSet &LRS,
                                           AllocationScratch *Scratch,
                                           GraphRep Policy) {
  // Even without a caller-provided arena, share one across the blocks of
  // this build instead of allocating per block.
  AllocationScratch Local;
  AllocationScratch &S = Scratch ? *Scratch : Local;
  InterferenceGraph IG(LRS.numRanges(), Policy, &S);
  for (const auto &BB : F.blocks())
    scanBlockForEdges(F, *BB, LV.liveOut(*BB), LRS, IG, &S);
  IG.finalize(&S);
  return IG;
}
