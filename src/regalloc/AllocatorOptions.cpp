//===- regalloc/AllocatorOptions.cpp --------------------------------------===//

#include "regalloc/AllocatorOptions.h"

#include <sstream>

using namespace ccra;

std::string AllocatorOptions::describe() const {
  switch (Kind) {
  case AllocatorKind::Chaitin:
    return Optimistic ? "optimistic" : "base";
  case AllocatorKind::Improved: {
    std::string Tag;
    if (StorageClass)
      Tag += "SC";
    if (BenefitSimplify)
      Tag += Tag.empty() ? "BS" : "+BS";
    if (PreferenceDecision)
      Tag += Tag.empty() ? "PR" : "+PR";
    if (Tag.empty())
      Tag = "improved(none)";
    if (Optimistic)
      Tag += "+opt";
    return Tag;
  }
  case AllocatorKind::Priority:
    switch (Ordering) {
    case PriorityOrdering::RemoveUnconstrained:
      return "priority(remove)";
    case PriorityOrdering::SortUnconstrained:
      return "priority(sortunc)";
    case PriorityOrdering::FullSort:
      return "priority";
    }
    return "priority";
  case AllocatorKind::CBH:
    return "CBH";
  }
  return "unknown";
}

// Textual field names of the canonical serialized form. Enum spellings are
// the single source of truth for both directions, so serialize -> parse
// cannot drift.
namespace {

const char *kindName(AllocatorKind K) {
  switch (K) {
  case AllocatorKind::Chaitin:
    return "chaitin";
  case AllocatorKind::Improved:
    return "improved";
  case AllocatorKind::Priority:
    return "priority";
  case AllocatorKind::CBH:
    return "cbh";
  }
  return "improved";
}

const char *bsKeyName(BenefitKeyStrategy S) {
  return S == BenefitKeyStrategy::MaxBenefit ? "max" : "delta";
}

const char *calleeModelName(CalleeCostModel M) {
  return M == CalleeCostModel::FirstUserPays ? "first-user" : "shared";
}

const char *orderingName(PriorityOrdering O) {
  switch (O) {
  case PriorityOrdering::RemoveUnconstrained:
    return "remove-unconstrained";
  case PriorityOrdering::SortUnconstrained:
    return "sort-unconstrained";
  case PriorityOrdering::FullSort:
    return "full-sort";
  }
  return "full-sort";
}

const char *graphName(GraphRep G) {
  switch (G) {
  case GraphRep::Auto:
    return "auto";
  case GraphRep::Dense:
    return "dense";
  case GraphRep::Sparse:
    return "sparse";
  }
  return "auto";
}

bool parseBool(const std::string &V, bool &Out) {
  if (V == "1")
    Out = true;
  else if (V == "0")
    Out = false;
  else
    return false;
  return true;
}

bool fail(std::string *Err, const std::string &Message) {
  if (Err)
    *Err = Message;
  return false;
}

} // namespace

std::string ccra::serializeAllocatorOptions(const AllocatorOptions &Opts) {
  std::ostringstream OS;
  OS << "kind=" << kindName(Opts.Kind)                          //
     << " optimistic=" << (Opts.Optimistic ? 1 : 0)             //
     << " storage-class=" << (Opts.StorageClass ? 1 : 0)        //
     << " benefit-simplify=" << (Opts.BenefitSimplify ? 1 : 0)  //
     << " preference-decision=" << (Opts.PreferenceDecision ? 1 : 0)
     << " bs-key=" << bsKeyName(Opts.BSKey)                     //
     << " callee-model=" << calleeModelName(Opts.CalleeModel)   //
     << " ordering=" << orderingName(Opts.Ordering)             //
     << " aggressive-coalescing=" << (Opts.AggressiveCoalescing ? 1 : 0)
     << " materialize=" << (Opts.MaterializeSaveRestore ? 1 : 0) //
     << " verify=" << (Opts.Verify ? 1 : 0)                      //
     << " verify-report-only=" << (Opts.VerifyReportOnly ? 1 : 0)
     << " incremental-reconstruction="
     << (Opts.IncrementalReconstruction ? 1 : 0)                //
     << " incremental-liveness=" << (Opts.IncrementalLiveness ? 1 : 0)
     << " scratch-arenas=" << (Opts.ScratchArenas ? 1 : 0)      //
     << " graph=" << graphName(Opts.GraphMode)                  //
     << " legacy-simplifier=" << (Opts.LegacySimplifier ? 1 : 0)
     << " max-rounds=" << Opts.MaxRounds                        //
     << " jobs=" << Opts.Jobs;
  return OS.str();
}

std::string AllocatorOptions::canonicalKey() const {
  std::ostringstream OS;
  OS << "kind=" << kindName(Kind)                            //
     << " optimistic=" << (Optimistic ? 1 : 0)               //
     << " storage-class=" << (StorageClass ? 1 : 0)          //
     << " benefit-simplify=" << (BenefitSimplify ? 1 : 0)    //
     << " preference-decision=" << (PreferenceDecision ? 1 : 0)
     << " bs-key=" << bsKeyName(BSKey)                       //
     << " callee-model=" << calleeModelName(CalleeModel)     //
     << " ordering=" << orderingName(Ordering)               //
     << " aggressive-coalescing=" << (AggressiveCoalescing ? 1 : 0)
     << " materialize=" << (MaterializeSaveRestore ? 1 : 0)  //
     << " max-rounds=" << MaxRounds;
  return OS.str();
}

bool ccra::parseAllocatorOptions(const std::string &Text, AllocatorOptions &Out,
                                 std::string *Err) {
  Out = AllocatorOptions();
  std::istringstream IS(Text);
  std::string Token;
  while (IS >> Token) {
    std::size_t Eq = Token.find('=');
    if (Eq == std::string::npos || Eq == 0)
      return fail(Err, "malformed option token '" + Token + "'");
    std::string Key = Token.substr(0, Eq);
    std::string Value = Token.substr(Eq + 1);
    bool Ok = true;
    if (Key == "kind") {
      if (Value == "chaitin")
        Out.Kind = AllocatorKind::Chaitin;
      else if (Value == "improved")
        Out.Kind = AllocatorKind::Improved;
      else if (Value == "priority")
        Out.Kind = AllocatorKind::Priority;
      else if (Value == "cbh")
        Out.Kind = AllocatorKind::CBH;
      else
        Ok = false;
    } else if (Key == "optimistic") {
      Ok = parseBool(Value, Out.Optimistic);
    } else if (Key == "storage-class") {
      Ok = parseBool(Value, Out.StorageClass);
    } else if (Key == "benefit-simplify") {
      Ok = parseBool(Value, Out.BenefitSimplify);
    } else if (Key == "preference-decision") {
      Ok = parseBool(Value, Out.PreferenceDecision);
    } else if (Key == "bs-key") {
      if (Value == "max")
        Out.BSKey = BenefitKeyStrategy::MaxBenefit;
      else if (Value == "delta")
        Out.BSKey = BenefitKeyStrategy::Delta;
      else
        Ok = false;
    } else if (Key == "callee-model") {
      if (Value == "first-user")
        Out.CalleeModel = CalleeCostModel::FirstUserPays;
      else if (Value == "shared")
        Out.CalleeModel = CalleeCostModel::Shared;
      else
        Ok = false;
    } else if (Key == "ordering") {
      if (Value == "remove-unconstrained")
        Out.Ordering = PriorityOrdering::RemoveUnconstrained;
      else if (Value == "sort-unconstrained")
        Out.Ordering = PriorityOrdering::SortUnconstrained;
      else if (Value == "full-sort")
        Out.Ordering = PriorityOrdering::FullSort;
      else
        Ok = false;
    } else if (Key == "aggressive-coalescing") {
      Ok = parseBool(Value, Out.AggressiveCoalescing);
    } else if (Key == "materialize") {
      Ok = parseBool(Value, Out.MaterializeSaveRestore);
    } else if (Key == "verify") {
      Ok = parseBool(Value, Out.Verify);
    } else if (Key == "verify-report-only") {
      Ok = parseBool(Value, Out.VerifyReportOnly);
    } else if (Key == "incremental-reconstruction") {
      Ok = parseBool(Value, Out.IncrementalReconstruction);
    } else if (Key == "incremental-liveness") {
      Ok = parseBool(Value, Out.IncrementalLiveness);
    } else if (Key == "scratch-arenas") {
      Ok = parseBool(Value, Out.ScratchArenas);
    } else if (Key == "legacy-simplifier") {
      Ok = parseBool(Value, Out.LegacySimplifier);
    } else if (Key == "graph") {
      if (Value == "auto")
        Out.GraphMode = GraphRep::Auto;
      else if (Value == "dense")
        Out.GraphMode = GraphRep::Dense;
      else if (Value == "sparse")
        Out.GraphMode = GraphRep::Sparse;
      else
        Ok = false;
    } else if (Key == "max-rounds" || Key == "jobs") {
      unsigned N = 0;
      if (Value.empty() ||
          Value.find_first_not_of("0123456789") != std::string::npos) {
        Ok = false;
      } else {
        try {
          unsigned long Wide = std::stoul(Value);
          N = static_cast<unsigned>(Wide);
          Ok = static_cast<unsigned long>(N) == Wide;
        } catch (const std::exception &) {
          Ok = false;
        }
      }
      if (Ok)
        (Key == "jobs" ? Out.Jobs : Out.MaxRounds) = N;
    } else {
      return fail(Err, "unknown option key '" + Key + "'");
    }
    if (!Ok)
      return fail(Err, "bad value for option '" + Key + "': '" + Value + "'");
  }
  return true;
}

AllocatorOptions ccra::baseChaitinOptions() {
  AllocatorOptions Opts;
  Opts.Kind = AllocatorKind::Chaitin;
  Opts.Optimistic = false;
  return Opts;
}

AllocatorOptions ccra::optimisticOptions() {
  AllocatorOptions Opts;
  Opts.Kind = AllocatorKind::Chaitin;
  Opts.Optimistic = true;
  return Opts;
}

AllocatorOptions ccra::improvedOptions(bool StorageClass, bool BenefitSimplify,
                                       bool PreferenceDecision) {
  AllocatorOptions Opts;
  Opts.Kind = AllocatorKind::Improved;
  Opts.StorageClass = StorageClass;
  Opts.BenefitSimplify = BenefitSimplify;
  Opts.PreferenceDecision = PreferenceDecision;
  return Opts;
}

AllocatorOptions ccra::improvedOptimisticOptions() {
  AllocatorOptions Opts = improvedOptions();
  Opts.Optimistic = true;
  return Opts;
}

AllocatorOptions ccra::priorityOptions(PriorityOrdering Ordering) {
  AllocatorOptions Opts;
  Opts.Kind = AllocatorKind::Priority;
  Opts.Ordering = Ordering;
  return Opts;
}

AllocatorOptions ccra::cbhOptions() {
  AllocatorOptions Opts;
  Opts.Kind = AllocatorKind::CBH;
  return Opts;
}
