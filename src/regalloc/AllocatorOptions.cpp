//===- regalloc/AllocatorOptions.cpp --------------------------------------===//

#include "regalloc/AllocatorOptions.h"

using namespace ccra;

std::string AllocatorOptions::describe() const {
  switch (Kind) {
  case AllocatorKind::Chaitin:
    return Optimistic ? "optimistic" : "base";
  case AllocatorKind::Improved: {
    std::string Tag;
    if (StorageClass)
      Tag += "SC";
    if (BenefitSimplify)
      Tag += Tag.empty() ? "BS" : "+BS";
    if (PreferenceDecision)
      Tag += Tag.empty() ? "PR" : "+PR";
    if (Tag.empty())
      Tag = "improved(none)";
    if (Optimistic)
      Tag += "+opt";
    return Tag;
  }
  case AllocatorKind::Priority:
    switch (Ordering) {
    case PriorityOrdering::RemoveUnconstrained:
      return "priority(remove)";
    case PriorityOrdering::SortUnconstrained:
      return "priority(sortunc)";
    case PriorityOrdering::FullSort:
      return "priority";
    }
    return "priority";
  case AllocatorKind::CBH:
    return "CBH";
  }
  return "unknown";
}

AllocatorOptions ccra::baseChaitinOptions() {
  AllocatorOptions Opts;
  Opts.Kind = AllocatorKind::Chaitin;
  Opts.Optimistic = false;
  return Opts;
}

AllocatorOptions ccra::optimisticOptions() {
  AllocatorOptions Opts;
  Opts.Kind = AllocatorKind::Chaitin;
  Opts.Optimistic = true;
  return Opts;
}

AllocatorOptions ccra::improvedOptions(bool StorageClass, bool BenefitSimplify,
                                       bool PreferenceDecision) {
  AllocatorOptions Opts;
  Opts.Kind = AllocatorKind::Improved;
  Opts.StorageClass = StorageClass;
  Opts.BenefitSimplify = BenefitSimplify;
  Opts.PreferenceDecision = PreferenceDecision;
  return Opts;
}

AllocatorOptions ccra::improvedOptimisticOptions() {
  AllocatorOptions Opts = improvedOptions();
  Opts.Optimistic = true;
  return Opts;
}

AllocatorOptions ccra::priorityOptions(PriorityOrdering Ordering) {
  AllocatorOptions Opts;
  Opts.Kind = AllocatorKind::Priority;
  Opts.Ordering = Ordering;
  return Opts;
}

AllocatorOptions ccra::cbhOptions() {
  AllocatorOptions Opts;
  Opts.Kind = AllocatorKind::CBH;
  return Opts;
}
