//===- regalloc/AllocationEngine.cpp --------------------------------------===//

#include "regalloc/AllocationEngine.h"

#include "analysis/Frequency.h"
#include "ir/Module.h"
#include "regalloc/AllocationVerifier.h"
#include "regalloc/Coalescer.h"
#include "regalloc/CostAccounting.h"
#include "regalloc/GraphReconstructor.h"
#include "regalloc/OverheadMaterializer.h"
#include "regalloc/SpillCodeInserter.h"
#include "regalloc/VRegClasses.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>

using namespace ccra;

AllocationEngine::AllocationEngine(MachineDescription MD,
                                   AllocatorOptions Opts,
                                   AllocatorFactory Factory)
    : MD(MD), Opts(Opts), Factory(std::move(Factory)) {
  assert(this->Factory && "engine needs an allocator factory");
  Allocator = this->Factory(this->Opts);
  assert(Allocator && "factory returned no allocator");
}

AllocationEngine::AllocationEngine(MachineDescription MD,
                                   AllocatorOptions Opts,
                                   std::unique_ptr<RegAllocBase> Allocator)
    : MD(MD), Opts(Opts), Allocator(std::move(Allocator)) {
  assert(this->Allocator && "engine needs an allocator");
}

FunctionAllocation
AllocationEngine::allocateFunction(Function &F,
                                   const FrequencyInfo &Freq) const {
  return allocateWith(*Allocator, F, Freq, Telem);
}

FunctionAllocation
AllocationEngine::allocateWith(RegAllocBase &Alloc, Function &F,
                               const FrequencyInfo &Freq,
                               Telemetry *T) const {
  FunctionAllocation Out;
  if (F.isDeclaration())
    return Out;

  Telemetry::ScopedTimer TotalTimer(T, telemetry::AllocateTotal);

  VRegClasses Classes(F.numVRegs());
  std::vector<PhysReg> RefusedCalleeRegs;

  // Carried across rounds so graph reconstruction can patch instead of
  // rebuild (paper §2). Valid whenever ReconstructIds is non-empty.
  Liveness CarriedLV;
  LiveRangeSet CarriedLRS;
  InterferenceGraph CarriedIG;
  std::vector<unsigned> ReconstructIds;
  unsigned ReconstructOldVRegs = 0;

  for (unsigned Round = 1; Round <= Opts.MaxRounds; ++Round) {
    Out.Rounds = Round;

    AllocationContext Ctx{F,          MD, Freq, Liveness(),
                          LiveRangeSet(), InterferenceGraph(),
                          Freq.entryFrequency(F), {}};
    if (!ReconstructIds.empty()) {
      // Incremental path: nothing to coalesce, patch last round's state.
      Telemetry::ScopedTimer Timer(T, telemetry::ReconstructPhase);
      GraphReconstructor::apply(F, Freq, CarriedLV, CarriedLRS, CarriedIG,
                                ReconstructIds, ReconstructOldVRegs);
      Classes.grow(F.numVRegs());
      Ctx.LV = std::move(CarriedLV);
      Ctx.LRS = std::move(CarriedLRS);
      Ctx.IG = std::move(CarriedIG);
    } else {
      {
        Telemetry::ScopedTimer Timer(T, telemetry::CoalescePhase);
        CoalesceStats CS = Coalescer::run(F, Classes, MD, Freq, Ctx.LV,
                                          Opts.AggressiveCoalescing);
        Out.CoalescedMoves += CS.CoalescedMoves;
      }
      Classes.grow(F.numVRegs());
      {
        Telemetry::ScopedTimer Timer(T, telemetry::BuildRangesPhase);
        Ctx.LRS = LiveRangeSet::build(F, Ctx.LV, Freq, Classes);
      }
      {
        Telemetry::ScopedTimer Timer(T, telemetry::BuildGraphPhase);
        Ctx.IG = InterferenceGraph::build(F, Ctx.LV, Ctx.LRS);
      }
    }
    ReconstructIds.clear();
    Ctx.RefusedCalleeRegs = RefusedCalleeRegs;

    RoundResult RR;
    {
      Telemetry::ScopedTimer Timer(T, telemetry::ColorPhase);
      Alloc.runRound(Ctx, RR);
    }
    RefusedCalleeRegs.insert(RefusedCalleeRegs.end(),
                             RR.NewlyRefusedCalleeRegs.begin(),
                             RR.NewlyRefusedCalleeRegs.end());
    assert(RR.Assignment.size() == Ctx.LRS.numRanges() &&
           "allocator did not decide every live range");
    Out.VoluntarySpills += RR.VoluntarySpills;

    // Collect the member registers of every spilled live range.
    std::vector<std::vector<VirtReg>> SpilledClasses;
    std::vector<int> SpillIndexOfRange(Ctx.LRS.numRanges(), -1);
    for (unsigned I = 0; I < Ctx.LRS.numRanges(); ++I) {
      if (!RR.Assignment[I].isMemory())
        continue;
      assert(!Ctx.LRS.range(I).NoSpill && "reload temporary spilled");
      SpillIndexOfRange[I] = static_cast<int>(SpilledClasses.size());
      SpilledClasses.emplace_back();
    }
    if (!SpilledClasses.empty()) {
      for (unsigned V = 0; V < F.numVRegs(); ++V) {
        int RangeId = Ctx.LRS.rangeIdOf(VirtReg(V));
        if (RangeId < 0 || SpillIndexOfRange[RangeId] < 0)
          continue;
        SpilledClasses[SpillIndexOfRange[RangeId]].push_back(VirtReg(V));
        Out.VRegLocations[V] = Location::inMemory();
      }
      Out.SpilledRanges += static_cast<unsigned>(SpilledClasses.size());

      // Graph reconstruction (§2): if the next round's coalescing phase
      // would be a no-op (no copies remain — spill code never adds any),
      // patch this round's state instead of rebuilding from scratch.
      bool Incremental = Opts.IncrementalReconstruction &&
                         GraphReconstructor::hasNoCopies(F);
      if (Incremental) {
        ReconstructOldVRegs = F.numVRegs();
        for (unsigned I = 0; I < Ctx.LRS.numRanges(); ++I)
          if (SpillIndexOfRange[I] >= 0)
            ReconstructIds.push_back(I);
        CarriedLV = std::move(Ctx.LV);
        CarriedLRS = std::move(Ctx.LRS);
        CarriedIG = std::move(Ctx.IG);
      }
      {
        Telemetry::ScopedTimer Timer(T, telemetry::SpillInsertPhase);
        SpillCodeInserter::run(F, SpilledClasses);
      }
      continue;
    }

    // Converged: record locations, materialize the call-cost overhead,
    // account, verify.
    for (unsigned V = 0; V < F.numVRegs(); ++V) {
      int RangeId = Ctx.LRS.rangeIdOf(VirtReg(V));
      if (RangeId >= 0)
        Out.VRegLocations[V] = RR.Assignment[RangeId];
    }

    Out.Costs = computeAnalyticCost(Ctx, RR);
    Out.CalleeRegsPaid = static_cast<unsigned>(
        OverheadMaterializer::paidCalleeRegs(Ctx, RR).size());
    if (Opts.MaterializeSaveRestore) {
      Telemetry::ScopedTimer Timer(T, telemetry::MaterializePhase);
      OverheadMaterializer::run(Ctx, RR);
    }

    if (Opts.Verify) {
      Telemetry::ScopedTimer Timer(T, telemetry::VerifyPhase);
      AllocationVerifyReport Report =
          verifyAllocation(Ctx, RR, Opts.MaterializeSaveRestore);
      if (!Report.ok()) {
        for (const std::string &Message : Report.Errors)
          std::fprintf(stderr, "allocation verifier: %s\n", Message.c_str());
        std::abort();
      }
    }

    if (T) {
      T->addCount(telemetry::Functions);
      T->addCount(telemetry::Rounds, Out.Rounds);
      T->addCount(telemetry::SpilledRanges, Out.SpilledRanges);
      T->addCount(telemetry::VoluntarySpills, Out.VoluntarySpills);
      T->addCount(telemetry::CoalescedMoves, Out.CoalescedMoves);
      T->addCount(telemetry::CalleeRegsPaid, Out.CalleeRegsPaid);
    }
    return Out;
  }

  assert(false && "register allocation did not converge within MaxRounds");
  return Out;
}

ModuleAllocationResult
AllocationEngine::allocateModule(Module &M, const FrequencyInfo &Freq) const {
  std::vector<Function *> Bodies;
  for (const auto &F : M.functions())
    if (!F->isDeclaration())
      Bodies.push_back(F.get());

  unsigned Jobs = Opts.Jobs == 0 ? ThreadPool::defaultParallelism()
                                 : Opts.Jobs;
  // Without a factory there is exactly one allocator instance; and one
  // function cannot be split.
  if (!Factory)
    Jobs = 1;
  Jobs = static_cast<unsigned>(
      std::min<std::size_t>(Jobs, Bodies.size() ? Bodies.size() : 1));

  ModuleAllocationResult Result;
  if (Jobs <= 1) {
    for (Function *F : Bodies) {
      FunctionAllocation FA = allocateWith(*Allocator, *F, Freq, Telem);
      Result.Totals += FA.Costs;
      Result.PerFunction[F] = std::move(FA);
    }
    return Result;
  }

  // Parallel path: one task per function, each with a private allocator
  // and a task-local telemetry recorder. The reduction below walks tasks
  // in function order, so totals accumulate in exactly the serial order
  // (bit-identical results) and telemetry merges deterministically.
  std::vector<FunctionAllocation> PerTask(Bodies.size());
  std::vector<TelemetrySnapshot> TaskTelemetry(Bodies.size());
  ThreadPool Pool(Jobs);
  Pool.parallelForEach(Bodies.size(), [&](std::size_t I) {
    std::unique_ptr<RegAllocBase> TaskAlloc = Factory(Opts);
    Telemetry Local;
    PerTask[I] = allocateWith(*TaskAlloc, *Bodies[I], Freq,
                              Telem ? &Local : nullptr);
    if (Telem)
      TaskTelemetry[I] = Local.snapshot();
  });

  for (std::size_t I = 0; I < Bodies.size(); ++I) {
    Result.Totals += PerTask[I].Costs;
    Result.PerFunction[Bodies[I]] = std::move(PerTask[I]);
    if (Telem)
      Telem->merge(TaskTelemetry[I]);
  }
  return Result;
}
