//===- regalloc/AllocationEngine.cpp --------------------------------------===//

#include "regalloc/AllocationEngine.h"

#include "analysis/Frequency.h"
#include "ir/Module.h"
#include "regalloc/AllocationScratch.h"
#include "regalloc/AllocationVerifier.h"
#include "regalloc/Coalescer.h"
#include "regalloc/CostAccounting.h"
#include "regalloc/GraphReconstructor.h"
#include "regalloc/OverheadMaterializer.h"
#include "regalloc/SpillCodeInserter.h"
#include "regalloc/VRegClasses.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <numeric>
#include <optional>

using namespace ccra;

AllocationEngine::AllocationEngine(MachineDescription MD,
                                   AllocatorOptions Opts,
                                   AllocatorFactory Factory)
    : MD(MD), Opts(Opts), Factory(std::move(Factory)) {
  assert(this->Factory && "engine needs an allocator factory");
  Allocator = this->Factory(this->Opts);
  assert(Allocator && "factory returned no allocator");
}

AllocationEngine::AllocationEngine(MachineDescription MD,
                                   AllocatorOptions Opts,
                                   std::unique_ptr<RegAllocBase> Allocator)
    : MD(MD), Opts(Opts), Allocator(std::move(Allocator)) {
  assert(this->Allocator && "engine needs an allocator");
}

FunctionAllocation
AllocationEngine::allocateFunction(Function &F,
                                   const FrequencyInfo &Freq) const {
  return allocateWith(*Allocator, F, Freq, Telem, /*SeedLV=*/nullptr,
                      /*Scratch=*/nullptr);
}

FunctionAllocation
AllocationEngine::allocateWith(RegAllocBase &Alloc, Function &F,
                               const FrequencyInfo &Freq, Telemetry *T,
                               const Liveness *SeedLV,
                               AllocationScratch *Scratch) const {
  FunctionAllocation Out;
  if (F.isDeclaration())
    return Out;

  Telemetry::ScopedTimer TotalTimer(T, telemetry::AllocateTotal);

  if (!Opts.ScratchArenas)
    Scratch = nullptr;

  VRegClasses Classes(F.numVRegs());
  std::vector<PhysReg> RefusedCalleeRegs;

  // Carried across rounds so graph reconstruction can patch instead of
  // rebuild (paper §2). Valid whenever ReconstructIds is non-empty.
  Liveness CarriedLV;
  LiveRangeSet CarriedLRS;
  InterferenceGraph CarriedIG;
  std::vector<unsigned> ReconstructIds;
  unsigned ReconstructOldVRegs = 0;

  // Liveness seed for the next coalescing round: the shared baseline at
  // round 1 (copied — the cached original stays pristine), the
  // spill-maintained solution at later rounds.
  bool CarriedLVValid = false;
  if (SeedLV && Opts.IncrementalLiveness) {
    CarriedLV = *SeedLV;
    CarriedLVValid = true;
  }
  unsigned LivenessComputes = 0, IncrementalLVUpdates = 0;

  for (unsigned Round = 1; Round <= Opts.MaxRounds; ++Round) {
    Out.Rounds = Round;

    AllocationContext Ctx{F,          MD, Freq, Liveness(),
                          LiveRangeSet(), InterferenceGraph(),
                          Freq.entryFrequency(F), {}};
    Ctx.T = T;
    if (!ReconstructIds.empty()) {
      // Incremental path: nothing to coalesce, patch last round's state.
      Telemetry::ScopedTimer Timer(T, telemetry::ReconstructPhase);
      GraphReconstructor::apply(F, Freq, CarriedLV, CarriedLRS, CarriedIG,
                                ReconstructIds, ReconstructOldVRegs, Scratch);
      Classes.grow(F.numVRegs());
      Ctx.LV = std::move(CarriedLV);
      Ctx.LRS = std::move(CarriedLRS);
      Ctx.IG = std::move(CarriedIG);
    } else {
      // The coalescer's final pass builds the live-range set and graph the
      // allocator needs, so no rebuild follows it.
      {
        Telemetry::ScopedTimer Timer(T, telemetry::CoalescePhase);
        CoalesceRequest Req;
        Req.Aggressive = Opts.AggressiveCoalescing;
        Req.IncrementalLiveness = Opts.IncrementalLiveness;
        Req.SeededLV = CarriedLVValid;
        Req.Scratch = Scratch;
        Req.T = T;
        Req.GraphMode = Opts.GraphMode;
        if (CarriedLVValid) {
          Ctx.LV = std::move(CarriedLV);
          CarriedLVValid = false;
        }
        CoalesceStats CS =
            Coalescer::run(F, Classes, MD, Freq, Ctx.LV, Req, Ctx.LRS, Ctx.IG);
        Out.CoalescedMoves += CS.CoalescedMoves;
        LivenessComputes += CS.LivenessComputes;
        IncrementalLVUpdates += CS.IncrementalLVUpdates;
      }
      Classes.grow(F.numVRegs());
      if (!Opts.IncrementalLiveness) {
        // Comparison mode: reproduce the historical compute pattern, where
        // the engine rebuilt the live-range set and graph from scratch
        // after coalescing (the coalescer's final-pass builds were
        // discarded). State is identical either way; only time differs.
        {
          Telemetry::ScopedTimer Timer(T, telemetry::BuildRangesPhase);
          Ctx.LRS = LiveRangeSet::build(F, Ctx.LV, Freq, Classes);
        }
        {
          Telemetry::ScopedTimer Timer(T, telemetry::BuildGraphPhase);
          Ctx.IG =
              InterferenceGraph::build(F, Ctx.LV, Ctx.LRS, Scratch,
                                       Opts.GraphMode);
        }
      }
    }
    ReconstructIds.clear();
    Ctx.RefusedCalleeRegs = RefusedCalleeRegs;
    if (T) {
      T->noteMax(telemetry::AllocPeakGraphBytes,
                 static_cast<double>(Ctx.IG.memoryBytes()));
      T->addCount(Ctx.IG.activeRep() == GraphRep::Dense
                      ? telemetry::AllocGraphDense
                      : telemetry::AllocGraphSparse);
    }

    RoundResult RR;
    {
      Telemetry::ScopedTimer Timer(T, telemetry::ColorPhase);
      Alloc.runRound(Ctx, RR);
    }
    RefusedCalleeRegs.insert(RefusedCalleeRegs.end(),
                             RR.NewlyRefusedCalleeRegs.begin(),
                             RR.NewlyRefusedCalleeRegs.end());
    assert(RR.Assignment.size() == Ctx.LRS.numRanges() &&
           "allocator did not decide every live range");
    Out.VoluntarySpills += RR.VoluntarySpills;

    // Collect the member registers of every spilled live range.
    std::vector<std::vector<VirtReg>> SpilledClasses;
    std::vector<int> LocalSpillIndex;
    if (!Scratch)
      LocalSpillIndex.assign(Ctx.LRS.numRanges(), -1);
    std::vector<int> &SpillIndexOfRange =
        Scratch ? Scratch->spillIndexOfRange(Ctx.LRS.numRanges())
                : LocalSpillIndex;
    for (unsigned I = 0; I < Ctx.LRS.numRanges(); ++I) {
      if (!RR.Assignment[I].isMemory())
        continue;
      assert(!Ctx.LRS.range(I).NoSpill && "reload temporary spilled");
      SpillIndexOfRange[I] = static_cast<int>(SpilledClasses.size());
      SpilledClasses.emplace_back();
    }
    if (!SpilledClasses.empty()) {
      for (unsigned V = 0; V < F.numVRegs(); ++V) {
        int RangeId = Ctx.LRS.rangeIdOf(VirtReg(V));
        if (RangeId < 0 || SpillIndexOfRange[RangeId] < 0)
          continue;
        SpilledClasses[SpillIndexOfRange[RangeId]].push_back(VirtReg(V));
        Out.VRegLocations[V] = Location::inMemory();
      }
      Out.SpilledRanges += static_cast<unsigned>(SpilledClasses.size());

      // Graph reconstruction (§2): if the next round's coalescing phase
      // would be a no-op (no copies remain — spill code never adds any),
      // patch this round's state instead of rebuilding from scratch.
      bool Incremental = Opts.IncrementalReconstruction &&
                         GraphReconstructor::hasNoCopies(F);
      if (Incremental) {
        ReconstructOldVRegs = F.numVRegs();
        for (unsigned I = 0; I < Ctx.LRS.numRanges(); ++I)
          if (SpillIndexOfRange[I] >= 0)
            ReconstructIds.push_back(I);
        CarriedLV = std::move(Ctx.LV);
        CarriedLRS = std::move(Ctx.LRS);
        CarriedIG = std::move(Ctx.IG);
      } else if (Opts.IncrementalLiveness) {
        // Copies remain, so the next round coalesces — but its liveness
        // seed survives the spill rewrite exactly: spilled registers
        // vanish from the code, and reload temporaries never live across
        // block boundaries (the same argument GraphReconstructor uses).
        CarriedLV = std::move(Ctx.LV);
        for (const auto &Members : SpilledClasses)
          for (VirtReg V : Members)
            CarriedLV.eraseRegister(V);
        CarriedLVValid = true;
      }
      // A non-incremental next round rebuilds the graph from scratch, so
      // this round's graph is garbage — return its buffers to the arena.
      if (!Incremental && Scratch)
        Ctx.IG.recycle(*Scratch);
      {
        Telemetry::ScopedTimer Timer(T, telemetry::SpillInsertPhase);
        SpillCodeInserter::run(F, SpilledClasses);
      }
      if (CarriedLVValid)
        CarriedLV.growUniverse(F.numVRegs());
      continue;
    }

    // Converged: record locations, materialize the call-cost overhead,
    // account, verify.
    for (unsigned V = 0; V < F.numVRegs(); ++V) {
      int RangeId = Ctx.LRS.rangeIdOf(VirtReg(V));
      if (RangeId >= 0)
        Out.VRegLocations[V] = RR.Assignment[RangeId];
    }

    Out.Costs = computeAnalyticCost(Ctx, RR);
    Out.CalleeRegsPaid = static_cast<unsigned>(
        OverheadMaterializer::paidCalleeRegs(Ctx, RR).size());
    if (Opts.MaterializeSaveRestore) {
      Telemetry::ScopedTimer Timer(T, telemetry::MaterializePhase);
      OverheadMaterializer::run(Ctx, RR);
    }

    if (Opts.Verify) {
      Telemetry::ScopedTimer Timer(T, telemetry::VerifyPhase);
      AllocationVerifyReport Report =
          verifyAllocation(Ctx, RR, Opts.MaterializeSaveRestore);
      if (!Report.ok()) {
        if (Opts.VerifyReportOnly) {
          Out.VerifyErrors = std::move(Report.Errors);
        } else {
          for (const std::string &Message : Report.Errors)
            std::fprintf(stderr, "allocation verifier: %s\n",
                         Message.c_str());
          std::abort();
        }
      }
    }

    if (T) {
      T->addCount(telemetry::Functions);
      T->addCount(telemetry::Rounds, Out.Rounds);
      T->addCount(telemetry::SpilledRanges, Out.SpilledRanges);
      T->addCount(telemetry::VoluntarySpills, Out.VoluntarySpills);
      T->addCount(telemetry::CoalescedMoves, Out.CoalescedMoves);
      T->addCount(telemetry::CalleeRegsPaid, Out.CalleeRegsPaid);
      T->addCount(telemetry::LivenessComputes, LivenessComputes);
      T->addCount(telemetry::LivenessIncrementalUpdates, IncrementalLVUpdates);
    }
    // Converged: the graph dies with the context — donate its capacity to
    // the next function sharing this arena.
    if (Scratch)
      Ctx.IG.recycle(*Scratch);
    return Out;
  }

  assert(false && "register allocation did not converge within MaxRounds");
  return Out;
}

ModuleAllocationResult
AllocationEngine::allocateModule(Module &M, const FrequencyInfo &Freq,
                                 const AnalysisSeeds *Seeds) const {
  std::vector<Function *> Bodies;
  for (const auto &F : M.functions())
    if (!F->isDeclaration())
      Bodies.push_back(F.get());
  assert((!Seeds || Seeds->BaselineLiveness.size() == Bodies.size()) &&
         "one baseline seed per function body");
  auto SeedOf = [&](std::size_t I) -> const Liveness * {
    return Seeds && Opts.IncrementalLiveness ? Seeds->BaselineLiveness[I]
                                             : nullptr;
  };

  unsigned Jobs = Opts.Jobs == 0 ? ThreadPool::defaultParallelism()
                                 : Opts.Jobs;
  // Without a factory there is exactly one allocator instance; and one
  // function cannot be split.
  if (!Factory)
    Jobs = 1;
  Jobs = static_cast<unsigned>(
      std::min<std::size_t>(Jobs, Bodies.size() ? Bodies.size() : 1));

  ModuleAllocationResult Result;
  if (Jobs <= 1) {
    AllocationScratch Scratch;
    for (std::size_t I = 0; I < Bodies.size(); ++I) {
      FunctionAllocation FA = allocateWith(*Allocator, *Bodies[I], Freq,
                                           Telem, SeedOf(I), &Scratch);
      Result.Totals += FA.Costs;
      Result.PerFunction[Bodies[I]] = std::move(FA);
    }
    if (Telem && Opts.ScratchArenas)
      Telem->addCount(telemetry::SchedScratchReuses,
                      static_cast<double>(Scratch.reuses()));
    return Result;
  }

  // Parallel path: one task per function, each with a private allocator
  // and a task-local telemetry recorder. The reduction below walks tasks
  // in function order, so totals accumulate in exactly the serial order
  // (bit-identical results) and telemetry merges deterministically.
  //
  // Tasks are handed out biggest-function-first: the pool's shared counter
  // serves indices in order, so fronting the heavy functions prevents the
  // long-tail stall where one of them starts last and every other worker
  // idles behind it. Outputs are indexed by body position, so the order
  // cannot change any result.
  std::vector<std::size_t> Sizes(Bodies.size(), 0);
  for (std::size_t I = 0; I < Bodies.size(); ++I)
    for (const auto &BB : Bodies[I]->blocks())
      Sizes[I] += BB->instructions().size();
  std::vector<std::size_t> Order(Bodies.size());
  std::iota(Order.begin(), Order.end(), std::size_t{0});
  std::stable_sort(Order.begin(), Order.end(),
                   [&](std::size_t A, std::size_t B) {
                     return Sizes[A] > Sizes[B];
                   });

  // A shared external pool serves this batch with its own workers (nested
  // submission is safe — the submitter drains its own batch); otherwise
  // spawn a private pool of the requested width.
  std::optional<ThreadPool> Owned;
  ThreadPool *P = Pool;
  if (!P) {
    Owned.emplace(Jobs);
    P = &*Owned;
  }

  std::vector<FunctionAllocation> PerTask(Bodies.size());
  std::vector<TelemetrySnapshot> TaskTelemetry(Bodies.size());
  // One scratch arena per worker slot. Slots are unique among the threads
  // executing one batch, so arenas are never shared between concurrent
  // tasks even on a pool serving several engines at once.
  std::vector<AllocationScratch> Scratches(P->size());
  P->parallelForEachSlot(
      Order.size(), [&](std::size_t TaskIdx, unsigned Slot) {
        std::size_t I = Order[TaskIdx];
        std::unique_ptr<RegAllocBase> TaskAlloc = Factory(Opts);
        Telemetry Local;
        PerTask[I] = allocateWith(*TaskAlloc, *Bodies[I], Freq,
                                  Telem ? &Local : nullptr, SeedOf(I),
                                  &Scratches[Slot]);
        if (Telem)
          TaskTelemetry[I] = Local.snapshot();
      });

  for (std::size_t I = 0; I < Bodies.size(); ++I) {
    Result.Totals += PerTask[I].Costs;
    Result.PerFunction[Bodies[I]] = std::move(PerTask[I]);
    if (Telem)
      Telem->merge(TaskTelemetry[I]);
  }
  if (Telem) {
    if (Opts.ScratchArenas) {
      std::uint64_t Reuses = 0;
      for (const AllocationScratch &S : Scratches)
        Reuses += S.reuses();
      Telem->addCount(telemetry::SchedScratchReuses,
                      static_cast<double>(Reuses));
    }
    if (Owned) {
      ThreadPool::Stats PS = Owned->stats();
      Telem->addCount(telemetry::SchedPoolBatches,
                      static_cast<double>(PS.Batches));
      Telem->addCount(telemetry::SchedPoolTasks,
                      static_cast<double>(PS.Tasks));
    }
  }
  return Result;
}
