//===- regalloc/AllocationEngine.cpp --------------------------------------===//

#include "regalloc/AllocationEngine.h"

#include "analysis/Frequency.h"
#include "ir/Module.h"
#include "regalloc/AllocationVerifier.h"
#include "regalloc/Coalescer.h"
#include "regalloc/CostAccounting.h"
#include "regalloc/GraphReconstructor.h"
#include "regalloc/OverheadMaterializer.h"
#include "regalloc/SpillCodeInserter.h"
#include "regalloc/VRegClasses.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>

using namespace ccra;

AllocationEngine::AllocationEngine(MachineDescription MD,
                                   AllocatorOptions Opts,
                                   std::unique_ptr<RegAllocBase> Allocator)
    : MD(MD), Opts(Opts), Allocator(std::move(Allocator)) {
  assert(this->Allocator && "engine needs an allocator");
}

FunctionAllocation
AllocationEngine::allocateFunction(Function &F,
                                   const FrequencyInfo &Freq) const {
  FunctionAllocation Out;
  if (F.isDeclaration())
    return Out;

  VRegClasses Classes(F.numVRegs());
  std::vector<PhysReg> RefusedCalleeRegs;

  // Carried across rounds so graph reconstruction can patch instead of
  // rebuild (paper §2). Valid whenever ReconstructIds is non-empty.
  Liveness CarriedLV;
  LiveRangeSet CarriedLRS;
  InterferenceGraph CarriedIG;
  std::vector<unsigned> ReconstructIds;
  unsigned ReconstructOldVRegs = 0;

  for (unsigned Round = 1; Round <= Opts.MaxRounds; ++Round) {
    Out.Rounds = Round;

    AllocationContext Ctx{F,          MD, Freq, Liveness(),
                          LiveRangeSet(), InterferenceGraph(),
                          Freq.entryFrequency(F), {}};
    if (!ReconstructIds.empty()) {
      // Incremental path: nothing to coalesce, patch last round's state.
      GraphReconstructor::apply(F, Freq, CarriedLV, CarriedLRS, CarriedIG,
                                ReconstructIds, ReconstructOldVRegs);
      Classes.grow(F.numVRegs());
      Ctx.LV = std::move(CarriedLV);
      Ctx.LRS = std::move(CarriedLRS);
      Ctx.IG = std::move(CarriedIG);
    } else {
      CoalesceStats CS = Coalescer::run(F, Classes, MD, Freq, Ctx.LV,
                                        Opts.AggressiveCoalescing);
      Out.CoalescedMoves += CS.CoalescedMoves;
      Classes.grow(F.numVRegs());
      Ctx.LRS = LiveRangeSet::build(F, Ctx.LV, Freq, Classes);
      Ctx.IG = InterferenceGraph::build(F, Ctx.LV, Ctx.LRS);
    }
    ReconstructIds.clear();
    Ctx.RefusedCalleeRegs = RefusedCalleeRegs;

    RoundResult RR;
    Allocator->runRound(Ctx, RR);
    RefusedCalleeRegs.insert(RefusedCalleeRegs.end(),
                             RR.NewlyRefusedCalleeRegs.begin(),
                             RR.NewlyRefusedCalleeRegs.end());
    assert(RR.Assignment.size() == Ctx.LRS.numRanges() &&
           "allocator did not decide every live range");
    Out.VoluntarySpills += RR.VoluntarySpills;

    // Collect the member registers of every spilled live range.
    std::vector<std::vector<VirtReg>> SpilledClasses;
    std::vector<int> SpillIndexOfRange(Ctx.LRS.numRanges(), -1);
    for (unsigned I = 0; I < Ctx.LRS.numRanges(); ++I) {
      if (!RR.Assignment[I].isMemory())
        continue;
      assert(!Ctx.LRS.range(I).NoSpill && "reload temporary spilled");
      SpillIndexOfRange[I] = static_cast<int>(SpilledClasses.size());
      SpilledClasses.emplace_back();
    }
    if (!SpilledClasses.empty()) {
      for (unsigned V = 0; V < F.numVRegs(); ++V) {
        int RangeId = Ctx.LRS.rangeIdOf(VirtReg(V));
        if (RangeId < 0 || SpillIndexOfRange[RangeId] < 0)
          continue;
        SpilledClasses[SpillIndexOfRange[RangeId]].push_back(VirtReg(V));
        Out.VRegLocations[V] = Location::inMemory();
      }
      Out.SpilledRanges += static_cast<unsigned>(SpilledClasses.size());

      // Graph reconstruction (§2): if the next round's coalescing phase
      // would be a no-op (no copies remain — spill code never adds any),
      // patch this round's state instead of rebuilding from scratch.
      bool Incremental = Opts.IncrementalReconstruction &&
                         GraphReconstructor::hasNoCopies(F);
      if (Incremental) {
        ReconstructOldVRegs = F.numVRegs();
        for (unsigned I = 0; I < Ctx.LRS.numRanges(); ++I)
          if (SpillIndexOfRange[I] >= 0)
            ReconstructIds.push_back(I);
        CarriedLV = std::move(Ctx.LV);
        CarriedLRS = std::move(Ctx.LRS);
        CarriedIG = std::move(Ctx.IG);
      }
      SpillCodeInserter::run(F, SpilledClasses);
      continue;
    }

    // Converged: record locations, materialize the call-cost overhead,
    // account, verify.
    for (unsigned V = 0; V < F.numVRegs(); ++V) {
      int RangeId = Ctx.LRS.rangeIdOf(VirtReg(V));
      if (RangeId >= 0)
        Out.VRegLocations[V] = RR.Assignment[RangeId];
    }

    Out.Costs = computeAnalyticCost(Ctx, RR);
    Out.CalleeRegsPaid = static_cast<unsigned>(
        OverheadMaterializer::paidCalleeRegs(Ctx, RR).size());
    if (Opts.MaterializeSaveRestore)
      OverheadMaterializer::run(Ctx, RR);

    if (Opts.Verify) {
      AllocationVerifyReport Report =
          verifyAllocation(Ctx, RR, Opts.MaterializeSaveRestore);
      if (!Report.ok()) {
        for (const std::string &Message : Report.Errors)
          std::fprintf(stderr, "allocation verifier: %s\n", Message.c_str());
        std::abort();
      }
    }
    return Out;
  }

  assert(false && "register allocation did not converge within MaxRounds");
  return Out;
}

ModuleAllocationResult
AllocationEngine::allocateModule(Module &M, const FrequencyInfo &Freq) const {
  ModuleAllocationResult Result;
  for (const auto &F : M.functions()) {
    if (F->isDeclaration())
      continue;
    FunctionAllocation FA = allocateFunction(*F, Freq);
    Result.Totals += FA.Costs;
    Result.PerFunction[F.get()] = std::move(FA);
  }
  return Result;
}
