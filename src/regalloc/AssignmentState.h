//===- regalloc/AssignmentState.h - Color-assignment bookkeeping -*- C++ -*-===//
///
/// \file
/// Shared machinery for the color-assignment phase: which registers each
/// live range may still take given its already-colored neighbors, picking a
/// register by caller/callee-save preference, and tracking per-register
/// user lists (needed by the shared callee-save cost model and by CBH).
///
//===----------------------------------------------------------------------===//

#ifndef CCRA_REGALLOC_ASSIGNMENTSTATE_H
#define CCRA_REGALLOC_ASSIGNMENTSTATE_H

#include "regalloc/AllocationContext.h"
#include "target/MachineDescription.h"

#include <vector>

namespace ccra {

/// Which kind of register a live range would rather have.
enum class RegKindPref { Caller, Callee };

class AssignmentState {
public:
  explicit AssignmentState(const AllocationContext &Ctx);

  /// Marks every caller-save register of \p RangeId's bank forbidden (the
  /// CBH rule for call-crossing live ranges).
  void restrictToCalleeSave(unsigned RangeId);

  /// Globally removes \p Reg from the allocatable set (CBH: a callee-save
  /// register whose save/restore live range was not spilled).
  void lockRegister(PhysReg Reg);

  /// Picks a register for \p RangeId avoiding its assigned neighbors.
  /// Preference is tried first; with \p AllowOtherKind the other kind is a
  /// fallback. Callee-save candidates are ordered already-used first (using
  /// a register someone else paid for is free under both cost models).
  /// Returns an invalid PhysReg when nothing is available.
  PhysReg pickRegister(unsigned RangeId, RegKindPref Pref,
                       bool AllowOtherKind = true) const;

  /// True if no live range has been assigned \p Reg yet.
  bool isFirstCalleeUser(PhysReg Reg) const { return usersOf(Reg).empty(); }

  /// True if some callee-save register of \p RangeId's bank is already in
  /// use (its save/restore already paid) and still assignable to
  /// \p RangeId. Reusing such a register is free under both callee-save
  /// cost models (§4).
  bool hasReusableCalleeReg(unsigned RangeId) const;

  void assign(unsigned RangeId, PhysReg Reg);
  /// Removes an assignment (used by the shared-cost spill post-pass and the
  /// steal fallback).
  void unassign(unsigned RangeId);
  void spill(unsigned RangeId);

  bool hasDecision(unsigned RangeId) const { return Decided[RangeId]; }
  const Location &location(unsigned RangeId) const {
    return Assignment[RangeId];
  }

  const std::vector<unsigned> &usersOf(PhysReg Reg) const;

  /// Steal fallback for unspillable reload temporaries: spills the assigned
  /// neighbor of \p RangeId with the smallest spill cost and returns its
  /// register. Returns an invalid register if no neighbor can be displaced.
  PhysReg stealRegisterFor(unsigned RangeId);

  /// Final assignment vector, indexed by live-range id.
  std::vector<Location> takeAssignment() { return std::move(Assignment); }
  const std::vector<Location> &assignment() const { return Assignment; }

private:
  unsigned regSlot(PhysReg Reg) const;
  bool isForbidden(unsigned RangeId, PhysReg Reg) const;

  const AllocationContext &Ctx;
  std::vector<Location> Assignment;       // by live-range id
  std::vector<bool> Decided;              // by live-range id
  std::vector<bool> CalleeOnly;           // by live-range id (CBH)
  std::vector<bool> Locked;               // by register slot
  std::vector<std::vector<unsigned>> Users; // by register slot
};

} // namespace ccra

#endif // CCRA_REGALLOC_ASSIGNMENTSTATE_H
