//===- regalloc/GraphRep.h - Interference representation policy -*- C++ -*-===//
///
/// \file
/// The interference-graph representation policy, shared by AllocatorOptions
/// (which selects it) and InterferenceGraph (which implements it). A tiny
/// standalone header so the options layer does not pull in the graph.
///
//===----------------------------------------------------------------------===//

#ifndef CCRA_REGALLOC_GRAPHREP_H
#define CCRA_REGALLOC_GRAPHREP_H

namespace ccra {

/// How InterferenceGraph stores the edge relation.
///
/// Dense keeps the classic triangular bit matrix: O(1) `interfere`, but
/// O(V^2) bits of memory and zeroing work. Sparse keeps only per-node
/// adjacency (hash-set dedup while building, sorted lists + binary-search
/// `interfere` once finalized): O(V+E) memory and build time. Auto picks
/// Dense below InterferenceGraph::DenseNodeThreshold nodes and Sparse
/// above it. Allocation results are bit-identical under every policy.
enum class GraphRep {
  Auto,
  Dense,
  Sparse,
};

} // namespace ccra

#endif // CCRA_REGALLOC_GRAPHREP_H
