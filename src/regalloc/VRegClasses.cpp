//===- regalloc/VRegClasses.cpp -------------------------------------------===//

#include "regalloc/VRegClasses.h"

#include <cassert>

using namespace ccra;

void VRegClasses::grow(unsigned NumVRegs) {
  unsigned Old = size();
  if (NumVRegs <= Old)
    return;
  Parent.resize(NumVRegs);
  Rank.resize(NumVRegs, 0);
  for (unsigned I = Old; I < NumVRegs; ++I)
    Parent[I] = I;
}

VirtReg VRegClasses::find(VirtReg R) const {
  assert(R.Id < Parent.size() && "register not covered by class structure");
  unsigned Walk = R.Id;
  while (Parent[Walk] != Walk) {
    Parent[Walk] = Parent[Parent[Walk]]; // path halving
    Walk = Parent[Walk];
  }
  return VirtReg(Walk);
}

VirtReg VRegClasses::merge(VirtReg A, VirtReg B) {
  unsigned RootA = find(A).Id;
  unsigned RootB = find(B).Id;
  if (RootA == RootB)
    return VirtReg(RootA);
  if (Rank[RootA] < Rank[RootB])
    std::swap(RootA, RootB);
  Parent[RootB] = RootA;
  if (Rank[RootA] == Rank[RootB])
    ++Rank[RootA];
  return VirtReg(RootA);
}

std::vector<VirtReg> VRegClasses::classMembers(VirtReg R) const {
  std::vector<VirtReg> Members;
  VirtReg Root = find(R);
  for (unsigned I = 0; I < size(); ++I)
    if (find(VirtReg(I)) == Root)
      Members.push_back(VirtReg(I));
  return Members;
}
