//===- regalloc/SpillCodeInserter.h - Spill code insertion ------*- C++ -*-===//
///
/// \file
/// Rewrites spilled live ranges into spill code (paper Figure 1's
/// "spill-code insertion" phase): every use loads the value from the
/// range's stack slot into a fresh reload temporary just before the using
/// instruction; every def stores the defining temporary right after. The
/// temporaries are unspillable and join the next coloring round — no
/// registers are reserved for spill code.
///
//===----------------------------------------------------------------------===//

#ifndef CCRA_REGALLOC_SPILLCODEINSERTER_H
#define CCRA_REGALLOC_SPILLCODEINSERTER_H

#include "ir/Function.h"

#include <vector>

namespace ccra {

class SpillCodeInserter {
public:
  struct Stats {
    unsigned RangesSpilled = 0;
    unsigned LoadsInserted = 0;
    unsigned StoresInserted = 0;
  };

  /// Spills the given congruence classes (each entry lists the member
  /// virtual registers of one spilled live range). Each class receives one
  /// fresh spill slot.
  static Stats run(Function &F,
                   const std::vector<std::vector<VirtReg>> &SpilledClasses);
};

} // namespace ccra

#endif // CCRA_REGALLOC_SPILLCODEINSERTER_H
