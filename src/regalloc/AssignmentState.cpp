//===- regalloc/AssignmentState.cpp ---------------------------------------===//

#include "regalloc/AssignmentState.h"

#include <algorithm>
#include <cassert>

using namespace ccra;

AssignmentState::AssignmentState(const AllocationContext &Ctx) : Ctx(Ctx) {
  unsigned NumRanges = Ctx.LRS.numRanges();
  Assignment.assign(NumRanges, Location::inMemory());
  Decided.assign(NumRanges, false);
  CalleeOnly.assign(NumRanges, false);
  unsigned Slots =
      Ctx.MD.numRegs(RegBank::Int) + Ctx.MD.numRegs(RegBank::Float);
  Locked.assign(Slots, false);
  Users.assign(Slots, {});
}

unsigned AssignmentState::regSlot(PhysReg Reg) const {
  assert(Reg.isValid() && Reg.Index < Ctx.MD.numRegs(Reg.Bank) &&
         "register outside the configured file");
  unsigned Base = Reg.Bank == RegBank::Int ? 0 : Ctx.MD.numRegs(RegBank::Int);
  return Base + Reg.Index;
}

void AssignmentState::restrictToCalleeSave(unsigned RangeId) {
  CalleeOnly[RangeId] = true;
}

void AssignmentState::lockRegister(PhysReg Reg) {
  Locked[regSlot(Reg)] = true;
}

bool AssignmentState::isForbidden(unsigned RangeId, PhysReg Reg) const {
  if (Locked[regSlot(Reg)])
    return true;
  if (CalleeOnly[RangeId] && Ctx.MD.isCallerSave(Reg))
    return true;
  return false;
}

PhysReg AssignmentState::pickRegister(unsigned RangeId, RegKindPref Pref,
                                      bool AllowOtherKind) const {
  const LiveRange &LR = Ctx.LRS.range(RangeId);
  RegBank Bank = LR.Bank;

  // Registers taken by already-colored interfering live ranges.
  std::vector<bool> Taken(Ctx.MD.numRegs(Bank), false);
  for (unsigned Neighbor : Ctx.IG.neighbors(RangeId)) {
    const Location &Loc = Assignment[Neighbor];
    if (Decided[Neighbor] && Loc.isRegister())
      Taken[Loc.Reg.Index] = true;
  }

  auto Usable = [&](PhysReg Reg) {
    return !Taken[Reg.Index] && !isForbidden(RangeId, Reg);
  };

  auto TryCaller = [&]() -> PhysReg {
    for (unsigned I = 0; I < Ctx.MD.callerCount(Bank); ++I) {
      PhysReg Reg = Ctx.MD.callerSaveReg(Bank, I);
      if (Usable(Reg))
        return Reg;
    }
    return PhysReg();
  };
  auto TryCallee = [&]() -> PhysReg {
    // Already-used callee-save registers first: their save/restore is
    // already paid, so reuse is free.
    for (unsigned I = 0; I < Ctx.MD.calleeCount(Bank); ++I) {
      PhysReg Reg = Ctx.MD.calleeSaveReg(Bank, I);
      if (!Users[regSlot(Reg)].empty() && Usable(Reg))
        return Reg;
    }
    for (unsigned I = 0; I < Ctx.MD.calleeCount(Bank); ++I) {
      PhysReg Reg = Ctx.MD.calleeSaveReg(Bank, I);
      if (Users[regSlot(Reg)].empty() && Usable(Reg))
        return Reg;
    }
    return PhysReg();
  };

  PhysReg Reg = Pref == RegKindPref::Caller ? TryCaller() : TryCallee();
  if (!Reg.isValid() && AllowOtherKind)
    Reg = Pref == RegKindPref::Caller ? TryCallee() : TryCaller();
  return Reg;
}

void AssignmentState::assign(unsigned RangeId, PhysReg Reg) {
  assert(!Decided[RangeId] && "live range already decided");
  Assignment[RangeId] = Location::inRegister(Reg);
  Decided[RangeId] = true;
  Users[regSlot(Reg)].push_back(RangeId);
}

void AssignmentState::unassign(unsigned RangeId) {
  assert(Decided[RangeId] && Assignment[RangeId].isRegister() &&
         "unassign of unassigned range");
  auto &List = Users[regSlot(Assignment[RangeId].Reg)];
  List.erase(std::find(List.begin(), List.end(), RangeId));
  Assignment[RangeId] = Location::inMemory();
  Decided[RangeId] = false;
}

void AssignmentState::spill(unsigned RangeId) {
  assert(!Decided[RangeId] && "live range already decided");
  Assignment[RangeId] = Location::inMemory();
  Decided[RangeId] = true;
}

const std::vector<unsigned> &AssignmentState::usersOf(PhysReg Reg) const {
  return Users[regSlot(Reg)];
}

bool AssignmentState::hasReusableCalleeReg(unsigned RangeId) const {
  RegBank Bank = Ctx.LRS.range(RangeId).Bank;
  std::vector<bool> Taken(Ctx.MD.numRegs(Bank), false);
  for (unsigned Neighbor : Ctx.IG.neighbors(RangeId)) {
    const Location &Loc = Assignment[Neighbor];
    if (Decided[Neighbor] && Loc.isRegister())
      Taken[Loc.Reg.Index] = true;
  }
  for (unsigned I = 0; I < Ctx.MD.calleeCount(Bank); ++I) {
    PhysReg Reg = Ctx.MD.calleeSaveReg(Bank, I);
    if (!Users[regSlot(Reg)].empty() && !Taken[Reg.Index] &&
        !isForbidden(RangeId, Reg))
      return true;
  }
  return false;
}

PhysReg AssignmentState::stealRegisterFor(unsigned RangeId) {
  const LiveRange &LR = Ctx.LRS.range(RangeId);

  // How many interfering neighbors currently hold each register: stealing
  // only helps when the victim is the *only* neighbor holding it.
  std::vector<unsigned> HeldBy(Ctx.MD.numRegs(LR.Bank), 0);
  for (unsigned Neighbor : Ctx.IG.neighbors(RangeId))
    if (Decided[Neighbor] && Assignment[Neighbor].isRegister())
      ++HeldBy[Assignment[Neighbor].Reg.Index];

  int BestNeighbor = -1;
  double BestCost = LiveRange::InfiniteSpillCost;
  for (unsigned Neighbor : Ctx.IG.neighbors(RangeId)) {
    if (!Decided[Neighbor] || !Assignment[Neighbor].isRegister())
      continue;
    const LiveRange &NLR = Ctx.LRS.range(Neighbor);
    if (NLR.NoSpill || NLR.Bank != LR.Bank)
      continue;
    if (isForbidden(RangeId, Assignment[Neighbor].Reg))
      continue;
    if (HeldBy[Assignment[Neighbor].Reg.Index] != 1)
      continue;
    if (BestNeighbor < 0 || NLR.spillCost() < BestCost) {
      BestNeighbor = static_cast<int>(Neighbor);
      BestCost = NLR.spillCost();
    }
  }
  if (BestNeighbor < 0)
    return PhysReg();
  PhysReg Freed = Assignment[BestNeighbor].Reg;
  unassign(static_cast<unsigned>(BestNeighbor));
  spill(static_cast<unsigned>(BestNeighbor));
  return Freed;
}
