//===- regalloc/CBHAllocator.h - Chaitin/Briggs/Hierarchical ----*- C++ -*-===//
///
/// \file
/// The CBH call-cost model of §10, the extension of Chaitin-style coloring
/// adopted by several compilers (Briggs; the Tera hierarchical allocator):
///
/// - A live range that crosses a call interferes with *all* caller-save
///   registers, so it can only be colored with a callee-save register.
/// - Each callee-save register gets a "callee-save-register live range"
///   spanning the whole function with spill cost 2 x entryFreq (the
///   save/restore at entry/exit). It interferes with every ordinary live
///   range. "Spilling" such a range pays the save/restore once and unlocks
///   the register for ordinary live ranges.
///
/// When simplification blocks, the cheapest remaining candidate is chosen
/// among ordinary live ranges *and* the still-locked callee-save-register
/// live ranges.
///
//===----------------------------------------------------------------------===//

#ifndef CCRA_REGALLOC_CBHALLOCATOR_H
#define CCRA_REGALLOC_CBHALLOCATOR_H

#include "regalloc/AllocatorOptions.h"
#include "regalloc/RegAllocBase.h"

namespace ccra {

class CBHAllocator : public RegAllocBase {
public:
  explicit CBHAllocator(const AllocatorOptions &Opts) : Opts(Opts) {}

  void runRound(AllocationContext &Ctx, RoundResult &RR) override;
  const char *name() const override { return "cbh"; }

private:
  AllocatorOptions Opts;
};

} // namespace ccra

#endif // CCRA_REGALLOC_CBHALLOCATOR_H
