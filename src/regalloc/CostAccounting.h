//===- regalloc/CostAccounting.h - Overhead cost computation ----*- C++ -*-===//
///
/// \file
/// Computes §3's register-allocation cost. Two independent paths exist and
/// are cross-checked in the test suite:
///
/// - measureFromCode: sum the frequency-weighted tagged overhead
///   instructions actually present in the function (requires spill code and
///   materialized save/restore code).
/// - computeAnalytic: derive caller-save / callee-save / shuffle costs from
///   the final assignment without materialization (spill code is always in
///   the code, so its component is measured either way).
///
//===----------------------------------------------------------------------===//

#ifndef CCRA_REGALLOC_COSTACCOUNTING_H
#define CCRA_REGALLOC_COSTACCOUNTING_H

#include "regalloc/AllocationContext.h"

namespace ccra {

class FrequencyInfo;

/// Weighted overhead read off the tagged instructions in \p F.
CostBreakdown measureCostFromCode(const Function &F,
                                  const FrequencyInfo &Freq);

/// Overhead derived from the final round's assignment: spill component from
/// the inserted spill code, caller-save from each caller-save-resident live
/// range's crossed calls, callee-save as 2 x entryFreq per paid register.
CostBreakdown computeAnalyticCost(const AllocationContext &Ctx,
                                  const RoundResult &RR);

} // namespace ccra

#endif // CCRA_REGALLOC_COSTACCOUNTING_H
