//===- regalloc/AllocationContext.h - One allocation round ------*- C++ -*-===//
///
/// \file
/// Everything a coloring allocator sees in one round of the framework
/// (Figure 1 of the paper): the function, the target, frequencies,
/// liveness, the live-range set, and the interference graph. After a spill
/// the driver rebuilds the context and re-runs the allocator (graph
/// reconstruction + restart from coalescing).
///
//===----------------------------------------------------------------------===//

#ifndef CCRA_REGALLOC_ALLOCATIONCONTEXT_H
#define CCRA_REGALLOC_ALLOCATIONCONTEXT_H

#include "analysis/Liveness.h"
#include "regalloc/AllocationResult.h"
#include "regalloc/InterferenceGraph.h"
#include "regalloc/LiveRange.h"

#include <vector>

namespace ccra {

class MachineDescription;
class FrequencyInfo;
class Telemetry;

struct AllocationContext {
  Function &F;
  const MachineDescription &MD;
  const FrequencyInfo &Freq;
  Liveness LV;
  LiveRangeSet LRS;
  InterferenceGraph IG;
  double EntryFreq = 0.0;

  /// Callee-save registers whose save/restore cost a previous round's
  /// storage-class analysis refused to pay (its users were spilled as a
  /// group). They stay off-limits for the rest of this function's
  /// allocation so the allocator does not repeatedly buy and return the
  /// same register across spill iterations.
  std::vector<PhysReg> RefusedCalleeRegs;

  /// Optional recorder for intra-round phase timers (alloc.simplify).
  /// Null-safe: allocators pass it to Telemetry::ScopedTimer directly.
  Telemetry *T = nullptr;
};

/// What one allocator round decided.
struct RoundResult {
  /// Location per live-range id. Memory entries are spill decisions.
  std::vector<Location> Assignment;

  /// Callee-save registers whose save/restore cost must be paid even if no
  /// live range uses them (CBH pays per "unlocked" register). When empty,
  /// the driver derives the paid set from actual register usage.
  std::vector<PhysReg> ForcedCalleePaid;
  bool PayUnusedCallee = false;

  /// Registers newly refused by the shared callee-save cost model this
  /// round; the driver carries them into the next round's context.
  std::vector<PhysReg> NewlyRefusedCalleeRegs;

  unsigned VoluntarySpills = 0;
};

} // namespace ccra

#endif // CCRA_REGALLOC_ALLOCATIONCONTEXT_H
