//===- regalloc/AllocationVerifier.h - Allocation soundness -----*- C++ -*-===//
///
/// \file
/// Post-allocation soundness checks: interfering live ranges never share a
/// physical register, every live range ends in a register of its own bank
/// within the configured file, and (when materialized) caller-save
/// save/restore pairs bracket every call a caller-save-resident live range
/// crosses.
///
//===----------------------------------------------------------------------===//

#ifndef CCRA_REGALLOC_ALLOCATIONVERIFIER_H
#define CCRA_REGALLOC_ALLOCATIONVERIFIER_H

#include "regalloc/AllocationContext.h"

#include <string>
#include <vector>

namespace ccra {

struct AllocationVerifyReport {
  std::vector<std::string> Errors;
  bool ok() const { return Errors.empty(); }
};

/// Verifies the final round's assignment against the final context.
AllocationVerifyReport verifyAllocation(const AllocationContext &Ctx,
                                        const RoundResult &RR,
                                        bool SaveRestoreMaterialized);

} // namespace ccra

#endif // CCRA_REGALLOC_ALLOCATIONVERIFIER_H
