//===- regalloc/ChaitinAllocator.h - Chaitin-style coloring -----*- C++ -*-===//
///
/// \file
/// The base Chaitin-style register allocator of §3.1, with Briggs
/// optimistic coloring as an option (§8), and the protected hook points the
/// paper's improved allocator (src/core) overrides:
///
/// - preColorOrdering: runs before simplification (preference decision).
/// - simplifyKey: removal order among unconstrained nodes (benefit-driven
///   simplification).
/// - preference: caller-save vs callee-save choice during assignment
///   (storage-class analysis; the base model prefers callee-save iff the
///   live range is live across a call).
/// - shouldSpillInstead / postAssignment: voluntary spilling when the
///   assigned kind of register costs more than spilling (storage-class
///   analysis, both callee-save cost models).
///
//===----------------------------------------------------------------------===//

#ifndef CCRA_REGALLOC_CHAITINALLOCATOR_H
#define CCRA_REGALLOC_CHAITINALLOCATOR_H

#include "regalloc/AllocatorOptions.h"
#include "regalloc/AssignmentState.h"
#include "regalloc/RegAllocBase.h"

namespace ccra {

class ChaitinAllocator : public RegAllocBase {
public:
  explicit ChaitinAllocator(const AllocatorOptions &Opts) : Opts(Opts) {}

  void runRound(AllocationContext &Ctx, RoundResult &RR) override;
  const char *name() const override {
    return Opts.Optimistic ? "optimistic" : "chaitin";
  }

protected:
  /// Hook: runs before simplification; may annotate live ranges.
  virtual void preColorOrdering(AllocationContext &Ctx) { (void)Ctx; }

  /// Hook: true if simplifyKey should order unconstrained removals.
  virtual bool hasSimplifyKey() const { return false; }
  virtual double simplifyKey(const AllocationContext &Ctx,
                             const LiveRange &LR) const {
    (void)Ctx;
    (void)LR;
    return 0.0;
  }

  /// Hook: which register kind to try first for \p LR (live range
  /// \p Node). \p State exposes which registers are already in use —
  /// reusing a paid callee-save register is free (§4).
  virtual RegKindPref preference(const AllocationContext &Ctx, unsigned Node,
                                 const LiveRange &LR,
                                 const AssignmentState &State) const {
    (void)Ctx;
    (void)Node;
    (void)State;
    return LR.ContainsCall ? RegKindPref::Callee : RegKindPref::Caller;
  }

  /// Hook: veto the found register in favor of spilling (storage-class
  /// analysis). \p Reg is the register pickRegister chose.
  virtual bool shouldSpillInstead(const AllocationContext &Ctx,
                                  const LiveRange &LR, PhysReg Reg,
                                  const AssignmentState &State) const {
    (void)Ctx;
    (void)LR;
    (void)Reg;
    (void)State;
    return false;
  }

  /// Hook: runs after all live ranges are decided (shared callee-save cost
  /// model's group spilling).
  virtual void postAssignment(AllocationContext &Ctx, AssignmentState &State,
                              RoundResult &RR) {
    (void)Ctx;
    (void)State;
    (void)RR;
  }

  AllocatorOptions Opts;
};

} // namespace ccra

#endif // CCRA_REGALLOC_CHAITINALLOCATOR_H
