//===- regalloc/AllocationScratch.h - Per-worker scratch arena --*- C++ -*-===//
///
/// \file
/// A bundle of reusable buffers for the allocation hot path. Small-function
/// allocation is dominated by malloc churn: every block scanned by
/// InterferenceGraph::scanBlockForEdges used to allocate a fresh BitVector
/// and two vectors, every coalescing pass a Touched array, every round a
/// spill-index map. An AllocationScratch owns those buffers and hands them
/// out re-initialized, so the capacity acquired on the first function is
/// recycled across blocks, passes, rounds, and functions.
///
/// Lifetime and invalidation: a scratch holds no allocation *state*, only
/// capacity — every accessor fully re-initializes the buffer it returns
/// (cleared bits, zeroed counts, empty lists) before handing it out, so a
/// scratch carries nothing from one use to the next and never needs
/// explicit invalidation. The one rule is exclusivity: one scratch, one
/// thread — the engine keeps one per worker slot (ThreadPool slots are
/// unique per concurrent task), the harness one per engine on the serial
/// path.
///
/// Determinism: buffers start each use in a state independent of history,
/// so scratch on/off cannot change any allocation result — only the number
/// of allocations. Reuses (a buffer handed out without growing) is
/// scheduling-dependent and feeds the "sched." telemetry namespace.
///
//===----------------------------------------------------------------------===//

#ifndef CCRA_REGALLOC_ALLOCATIONSCRATCH_H
#define CCRA_REGALLOC_ALLOCATIONSCRATCH_H

#include "support/BitVector.h"

#include <cstdint>
#include <unordered_set>
#include <utility>
#include <vector>

namespace ccra {

class AllocationScratch {
public:
  /// scanBlockForEdges: the vreg-granularity live set. Returned resized to
  /// \p NumVRegs with every bit clear.
  BitVector &liveBits(unsigned NumVRegs) {
    noteReuse(LiveBits.size() >= NumVRegs);
    LiveBits.resize(NumVRegs);
    LiveBits.resetAll();
    return LiveBits;
  }

  /// scanBlockForEdges: live-vreg count per live range, zeroed.
  std::vector<unsigned> &rangeLiveCount(unsigned NumRanges) {
    noteReuse(RangeLiveCount.capacity() >= NumRanges);
    RangeLiveCount.assign(NumRanges, 0);
    return RangeLiveCount;
  }

  /// scanBlockForEdges: dense list of currently live ranges, emptied.
  std::vector<unsigned> &rangeLiveList() {
    noteReuse(RangeLiveList.capacity() > 0);
    RangeLiveList.clear();
    return RangeLiveList;
  }

  /// scanBlockForEdges: position of each live range inside rangeLiveList(),
  /// for O(1) swap-removal. Returned sized to \p NumRanges; contents are
  /// only read for ranges currently in the live list, so no re-init beyond
  /// the resize is needed.
  std::vector<unsigned> &rangeLivePos(unsigned NumRanges) {
    noteReuse(RangeLivePos.capacity() >= NumRanges);
    RangeLivePos.resize(NumRanges);
    return RangeLivePos;
  }

  /// Coalescer: one-merge-per-range-per-pass marks, zeroed.
  std::vector<char> &touchedRanges(unsigned NumRanges) {
    noteReuse(TouchedRanges.capacity() >= NumRanges);
    TouchedRanges.assign(NumRanges, 0);
    return TouchedRanges;
  }

  /// Coalescer: per-instruction deletion marks for one pass, zeroed.
  std::vector<char> &deleteFlags(std::size_t NumInsts) {
    noteReuse(DeleteFlags.capacity() >= NumInsts);
    DeleteFlags.assign(NumInsts, 0);
    return DeleteFlags;
  }

  /// Engine round: spill index per live range, reset to -1.
  std::vector<int> &spillIndexOfRange(unsigned NumRanges) {
    noteReuse(SpillIndexOfRange.capacity() >= NumRanges);
    SpillIndexOfRange.assign(NumRanges, -1);
    return SpillIndexOfRange;
  }

  /// \name Interference-graph buffer pool
  /// Unlike the accessors above, graph buffers are *moved* out (the graph
  /// outlives any single scratch handout) and returned by
  /// InterferenceGraph::recycle / finalize when the graph is done with
  /// them. take* re-initializes nothing beyond emptying — the graph
  /// constructor sizes what it takes.
  /// @{
  std::vector<std::vector<unsigned>> takeGraphAdj() {
    noteReuse(!GraphAdj.empty());
    return std::move(GraphAdj);
  }
  void storeGraphAdj(std::vector<std::vector<unsigned>> &&Adj) {
    GraphAdj = std::move(Adj);
  }

  BitVector takeGraphMatrix() {
    noteReuse(GraphMatrix.memoryBytes() > 0);
    return std::move(GraphMatrix);
  }
  void storeGraphMatrix(BitVector &&Matrix) { GraphMatrix = std::move(Matrix); }

  std::unordered_set<uint64_t> takeGraphEdgeSet() {
    noteReuse(GraphEdgeSet.bucket_count() > 0);
    GraphEdgeSet.clear();
    return std::move(GraphEdgeSet);
  }
  void storeGraphEdgeSet(std::unordered_set<uint64_t> &&EdgeSet) {
    GraphEdgeSet = std::move(EdgeSet);
  }
  /// @}

  /// Number of times a buffer was handed out without having to grow.
  std::uint64_t reuses() const { return Reuses; }

private:
  void noteReuse(bool Reused) { Reuses += Reused ? 1 : 0; }

  BitVector LiveBits;
  std::vector<unsigned> RangeLiveCount;
  std::vector<unsigned> RangeLiveList;
  std::vector<unsigned> RangeLivePos;
  std::vector<char> TouchedRanges;
  std::vector<char> DeleteFlags;
  std::vector<int> SpillIndexOfRange;
  std::vector<std::vector<unsigned>> GraphAdj;
  BitVector GraphMatrix;
  std::unordered_set<uint64_t> GraphEdgeSet;
  std::uint64_t Reuses = 0;
};

} // namespace ccra

#endif // CCRA_REGALLOC_ALLOCATIONSCRATCH_H
