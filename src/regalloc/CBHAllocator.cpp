//===- regalloc/CBHAllocator.cpp ------------------------------------------===//

#include "regalloc/CBHAllocator.h"

#include "regalloc/AssignmentState.h"

#include <cassert>
#include <limits>

using namespace ccra;

void CBHAllocator::runRound(AllocationContext &Ctx, RoundResult &RR) {
  const LiveRangeSet &LRS = Ctx.LRS;
  const InterferenceGraph &IG = Ctx.IG;
  const MachineDescription &MD = Ctx.MD;
  unsigned NumNodes = IG.numNodes();

  // Effective degrees include the pseudo neighbors: every callee-save
  // register live range of the node's bank (they span the whole function),
  // and — for call-crossing ranges — every caller-save register.
  std::vector<bool> Crossing(NumNodes);
  std::vector<unsigned> Degree(NumNodes);
  std::vector<bool> Active(NumNodes, true);
  unsigned ActivePerBank[NumRegBanks] = {0, 0};
  unsigned LockedCalleeCount[NumRegBanks];
  for (unsigned B = 0; B < NumRegBanks; ++B)
    LockedCalleeCount[B] = MD.calleeCount(static_cast<RegBank>(B));
  std::vector<std::vector<bool>> CalleeLocked = {
      std::vector<bool>(MD.calleeCount(RegBank::Int), true),
      std::vector<bool>(MD.calleeCount(RegBank::Float), true)};

  for (unsigned I = 0; I < NumNodes; ++I) {
    const LiveRange &LR = LRS.range(I);
    Crossing[I] = LR.ContainsCall;
    unsigned BankIdx = static_cast<unsigned>(LR.Bank);
    Degree[I] = IG.degree(I) + MD.calleeCount(LR.Bank) +
                (Crossing[I] ? MD.callerCount(LR.Bank) : 0);
    ++ActivePerBank[BankIdx];
  }

  double CalleeNodeCost = 2.0 * Ctx.EntryFreq;

  auto Deactivate = [&](unsigned Node) {
    Active[Node] = false;
    --ActivePerBank[static_cast<unsigned>(LRS.range(Node).Bank)];
    for (unsigned Neighbor : IG.neighbors(Node))
      if (Active[Neighbor])
        --Degree[Neighbor];
  };
  auto UnlockCallee = [&](RegBank Bank) {
    unsigned BankIdx = static_cast<unsigned>(Bank);
    assert(LockedCalleeCount[BankIdx] > 0 && "no locked register to unlock");
    for (unsigned J = 0; J < CalleeLocked[BankIdx].size(); ++J)
      if (CalleeLocked[BankIdx][J]) {
        CalleeLocked[BankIdx][J] = false;
        break;
      }
    --LockedCalleeCount[BankIdx];
    for (unsigned I = 0; I < NumNodes; ++I)
      if (Active[I] && LRS.range(I).Bank == Bank)
        --Degree[I];
  };

  // --- Simplification over ordinary nodes -------------------------------
  std::vector<unsigned> Stack;
  std::vector<bool> PushedBlocked(NumNodes, false);
  std::vector<unsigned> SpilledNodes;
  Stack.reserve(NumNodes);

  unsigned Remaining = NumNodes;
  while (Remaining > 0) {
    int Best = -1;
    for (unsigned I = 0; I < NumNodes; ++I) {
      if (Active[I] && Degree[I] < MD.numRegs(LRS.range(I).Bank)) {
        Best = static_cast<int>(I);
        break;
      }
    }
    if (Best >= 0) {
      Stack.push_back(static_cast<unsigned>(Best));
      Deactivate(static_cast<unsigned>(Best));
      --Remaining;
      continue;
    }

    // Blocked: cheapest among spillable ordinary ranges and the locked
    // callee-save-register live ranges.
    int Victim = -1;
    double VictimMetric = std::numeric_limits<double>::infinity();
    for (unsigned I = 0; I < NumNodes; ++I) {
      if (!Active[I] || LRS.range(I).NoSpill)
        continue;
      double Metric = LRS.range(I).spillCost() /
                      static_cast<double>(std::max(Degree[I], 1u));
      if (Victim < 0 || Metric < VictimMetric) {
        Victim = static_cast<int>(I);
        VictimMetric = Metric;
      }
    }
    int CalleeBank = -1;
    double CalleeMetric = std::numeric_limits<double>::infinity();
    for (unsigned B = 0; B < NumRegBanks; ++B) {
      if (LockedCalleeCount[B] == 0 || ActivePerBank[B] == 0)
        continue;
      // The callee-save-register live range conflicts with every active
      // ordinary range of its bank; that is its degree.
      double Metric =
          CalleeNodeCost / static_cast<double>(std::max(ActivePerBank[B], 1u));
      if (Metric < CalleeMetric) {
        CalleeBank = static_cast<int>(B);
        CalleeMetric = Metric;
      }
    }

    if (CalleeBank >= 0 && (Victim < 0 || CalleeMetric <= VictimMetric)) {
      UnlockCallee(static_cast<RegBank>(CalleeBank));
      continue;
    }
    if (Victim >= 0) {
      SpilledNodes.push_back(static_cast<unsigned>(Victim));
      Deactivate(static_cast<unsigned>(Victim));
      --Remaining;
      continue;
    }
    // Only unspillable temporaries remain and every callee-save register
    // is already unlocked: push blocked and let the steal fallback cope.
    unsigned BestDegree = ~0u;
    unsigned Pick = 0;
    for (unsigned I = 0; I < NumNodes; ++I)
      if (Active[I] && Degree[I] < BestDegree) {
        Pick = I;
        BestDegree = Degree[I];
      }
    Stack.push_back(Pick);
    PushedBlocked[Pick] = true;
    Deactivate(Pick);
    --Remaining;
  }

  // --- Color assignment ---------------------------------------------------
  AssignmentState State(Ctx);
  RR.PayUnusedCallee = true;
  for (unsigned B = 0; B < NumRegBanks; ++B) {
    RegBank Bank = static_cast<RegBank>(B);
    for (unsigned J = 0; J < CalleeLocked[B].size(); ++J) {
      if (CalleeLocked[B][J])
        State.lockRegister(MD.calleeSaveReg(Bank, J));
      else
        RR.ForcedCalleePaid.push_back(MD.calleeSaveReg(Bank, J));
    }
  }
  for (unsigned Node : SpilledNodes)
    State.spill(Node);
  for (unsigned I = 0; I < NumNodes; ++I)
    if (Crossing[I])
      State.restrictToCalleeSave(I);

  for (auto It = Stack.rbegin(), E = Stack.rend(); It != E; ++It) {
    unsigned Node = *It;
    const LiveRange &LR = LRS.range(Node);
    // Crossing ranges may only take callee-save registers (the restriction
    // filters caller-save candidates); non-crossing ranges prefer
    // caller-save, which is free.
    RegKindPref Pref =
        Crossing[Node] ? RegKindPref::Callee : RegKindPref::Caller;
    PhysReg Reg = State.pickRegister(Node, Pref);
    if (Reg.isValid()) {
      State.assign(Node, Reg);
      continue;
    }
    assert(PushedBlocked[Node] &&
           "CBH: guaranteed-colorable node found no color");
    if (LR.NoSpill) {
      Reg = State.stealRegisterFor(Node);
      assert(Reg.isValid() && "CBH: cannot color unspillable reload temp");
      State.assign(Node, Reg);
    } else {
      State.spill(Node);
    }
  }
  RR.Assignment = State.takeAssignment();
}
