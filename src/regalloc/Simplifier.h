//===- regalloc/Simplifier.h - Simplification / color ordering --*- C++ -*-===//
///
/// \file
/// Chaitin simplification: repeatedly remove an unconstrained node (degree
/// < N for its bank) and push it onto the color stack; when simplification
/// blocks, pick a spill candidate by the classic spillCost/degree heuristic.
///
/// The removal order among unconstrained nodes is pluggable: base Chaitin
/// does not care (KeyFn null, lowest id wins), the paper's benefit-driven
/// simplification (§5) supplies a key so that live ranges with a large
/// wrong-register penalty end up near the top of the stack.
///
/// Optimistic (Briggs) mode pushes the blocked pick instead of spilling it;
/// the spill decision is deferred to color assignment (§8).
///
/// Two implementations share these semantics bit-for-bit:
///
///  - run(): worklist-driven. Unconstrained nodes live in a (key, index)
///    min-heap over keys cached once per run; constrained nodes in a dense
///    set. Deactivating a node decrements neighbor degrees and migrates a
///    neighbor that drops below its color limit from the constrained set to
///    the heap, so a full pass costs O((V + E) log V) instead of the
///    reference's O(V^2).
///  - runReference(): the original rescan-everything loop, retained as the
///    equivalence oracle for tests and the perf_grid legacy arm.
///
/// Identical output is an invariant, not an accident: every tie in both
/// implementations resolves to the lowest node index (the heap orders by
/// (key, index); the reference's first-wins scans visit indices
/// ascending), keys are pure functions of the LiveRange so caching cannot
/// change them, and a node transitions constrained -> unconstrained at most
/// once because degrees only decrease while color limits are fixed.
///
//===----------------------------------------------------------------------===//

#ifndef CCRA_REGALLOC_SIMPLIFIER_H
#define CCRA_REGALLOC_SIMPLIFIER_H

#include "regalloc/AllocationContext.h"

#include <functional>
#include <vector>

namespace ccra {

struct SimplifyResult {
  /// Color stack, bottom first; color assignment pops from the back.
  std::vector<unsigned> Stack;
  /// Nodes removed as spills (empty in optimistic mode).
  std::vector<unsigned> SpilledNodes;
  /// Per live-range flag: pushed while simplification was blocked, so a
  /// color is not guaranteed.
  std::vector<bool> PushedOptimistically;
};

class Simplifier {
public:
  /// Ordering key among unconstrained nodes; the *smallest* key is removed
  /// first (ends up lowest on the stack). Null = id order.
  using KeyFn = std::function<double(const LiveRange &)>;

  static SimplifyResult run(const AllocationContext &Ctx, bool Optimistic,
                            const KeyFn &Key = nullptr);

  /// The O(V^2) reference implementation. Produces byte-identical results
  /// to run() on every input; kept for the equivalence tests and the
  /// AllocatorOptions::LegacySimplifier escape hatch.
  static SimplifyResult runReference(const AllocationContext &Ctx,
                                     bool Optimistic,
                                     const KeyFn &Key = nullptr);
};

} // namespace ccra

#endif // CCRA_REGALLOC_SIMPLIFIER_H
