//===- regalloc/AllocationEngine.h - Allocation driver ----------*- C++ -*-===//
///
/// \file
/// The framework driver (paper Figure 1): per function it loops
///
///   liveness -> coalescing -> live ranges -> interference graph ->
///   allocator round -> (spill-code insertion, repeat) -> save/restore
///   materialization -> cost accounting -> verification.
///
/// The engine is allocator-agnostic: it is built around an *allocator
/// factory* so that every concurrent allocation task gets a private
/// allocator instance. allocateModule fans the functions of a module
/// across a thread pool when AllocatorOptions::Jobs allows it; results are
/// reduced in function order, so parallel allocation is bit-identical to
/// the serial path (equivalence-tested in tests/ParallelTest.cpp).
///
/// Attach a Telemetry recorder (EngineBuilder::telemetry or setTelemetry)
/// to collect per-phase wall-clock timers and allocation counters.
///
/// NOTE: allocation mutates the function (spill and save/restore code).
/// Benchmarks clone the module per run (see ir/Cloner.h).
///
//===----------------------------------------------------------------------===//

#ifndef CCRA_REGALLOC_ALLOCATIONENGINE_H
#define CCRA_REGALLOC_ALLOCATIONENGINE_H

#include "regalloc/AllocationResult.h"
#include "regalloc/AllocatorOptions.h"
#include "regalloc/RegAllocBase.h"
#include "support/Telemetry.h"
#include "target/MachineDescription.h"

#include <functional>
#include <memory>
#include <vector>

namespace ccra {

class AllocationScratch;
class FrequencyInfo;
class Liveness;
class Module;
class ThreadPool;

/// Optional shared-analysis seeds for allocateModule. BaselineLiveness[I]
/// is the exact pre-allocation liveness of the I-th function *body*
/// (functions with a definition, in module order); entries may be null.
/// The harness fills this from a ModuleAnalysisCache computed on the
/// pristine source module — valid for its clones too, since cloning
/// preserves block ids and vreg numbering. Honored only when
/// AllocatorOptions::IncrementalLiveness is on; each allocation copies its
/// seed, never mutates it.
struct AnalysisSeeds {
  std::vector<const Liveness *> BaselineLiveness;
};

/// Creates a fresh allocator implementing \p Opts. Must be safe to call
/// concurrently (core/AllocatorFactory.h's createAllocator is).
using AllocatorFactory =
    std::function<std::unique_ptr<RegAllocBase>(const AllocatorOptions &)>;

class AllocationEngine {
public:
  /// Preferred constructor: \p Factory mints one allocator per concurrent
  /// allocation task, enabling Jobs > 1.
  AllocationEngine(MachineDescription MD, AllocatorOptions Opts,
                   AllocatorFactory Factory);

  /// Single-allocator constructor, kept for callers that hand-build one
  /// allocator instance. The engine owns it; with no factory to mint more,
  /// allocateModule always runs serially.
  AllocationEngine(MachineDescription MD, AllocatorOptions Opts,
                   std::unique_ptr<RegAllocBase> Allocator);

  /// Attaches (or detaches, with null) a telemetry recorder. Not owned;
  /// must outlive every allocate call.
  void setTelemetry(Telemetry *T) { Telem = T; }
  Telemetry *telemetry() const { return Telem; }

  /// Attaches (or detaches, with null) an external thread pool for
  /// allocateModule's parallel path. Not owned; must outlive every
  /// allocate call. With a shared pool the engine submits its functions as
  /// one batch instead of spawning a private pool — the fix for
  /// grid-level x module-level parallelism oversubscribing the machine
  /// with nested pools. The pool's size then governs parallelism (Jobs
  /// only selects serial vs parallel).
  void setPool(ThreadPool *P) { Pool = P; }
  ThreadPool *pool() const { return Pool; }

  /// Allocates registers for \p F (mutating it) and returns locations,
  /// statistics, and the §3 cost breakdown.
  FunctionAllocation allocateFunction(Function &F,
                                      const FrequencyInfo &Freq) const;

  /// Allocates every function with a body. Runs Opts.Jobs function
  /// allocations concurrently (0 = one per hardware thread); results are
  /// identical to Jobs == 1 bit for bit. The parallel path hands tasks out
  /// biggest-function-first (long-tail load balancing) and keeps one
  /// scratch arena per worker slot; \p Seeds optionally provides shared
  /// baseline liveness per body. None of this changes any result.
  ModuleAllocationResult allocateModule(Module &M, const FrequencyInfo &Freq,
                                        const AnalysisSeeds *Seeds) const;
  ModuleAllocationResult allocateModule(Module &M,
                                        const FrequencyInfo &Freq) const {
    return allocateModule(M, Freq, nullptr);
  }

  const MachineDescription &machine() const { return MD; }
  const AllocatorOptions &options() const { return Opts; }

private:
  /// One whole-function allocation with an explicit allocator instance,
  /// telemetry sink, optional baseline-liveness seed, and optional scratch
  /// arena (all per-task in the parallel path).
  FunctionAllocation allocateWith(RegAllocBase &Alloc, Function &F,
                                  const FrequencyInfo &Freq, Telemetry *T,
                                  const Liveness *SeedLV,
                                  AllocationScratch *Scratch) const;

  MachineDescription MD;
  AllocatorOptions Opts;
  AllocatorFactory Factory; ///< null when built from a single allocator
  std::unique_ptr<RegAllocBase> Allocator; ///< serial-path instance
  Telemetry *Telem = nullptr;
  ThreadPool *Pool = nullptr; ///< external shared pool (not owned)
};

} // namespace ccra

#endif // CCRA_REGALLOC_ALLOCATIONENGINE_H
