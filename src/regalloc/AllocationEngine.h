//===- regalloc/AllocationEngine.h - Allocation driver ----------*- C++ -*-===//
///
/// \file
/// The framework driver (paper Figure 1): per function it loops
///
///   liveness -> coalescing -> live ranges -> interference graph ->
///   allocator round -> (spill-code insertion, repeat) -> save/restore
///   materialization -> cost accounting -> verification.
///
/// The engine is allocator-agnostic: any RegAllocBase implementation plugs
/// in. src/core provides the factory that maps AllocatorOptions to the
/// right allocator (including the paper's improved Chaitin allocator).
///
/// NOTE: allocation mutates the function (spill and save/restore code).
/// Benchmarks clone the module per run (see ir/Cloner.h).
///
//===----------------------------------------------------------------------===//

#ifndef CCRA_REGALLOC_ALLOCATIONENGINE_H
#define CCRA_REGALLOC_ALLOCATIONENGINE_H

#include "regalloc/AllocationResult.h"
#include "regalloc/AllocatorOptions.h"
#include "regalloc/RegAllocBase.h"
#include "target/MachineDescription.h"

#include <memory>

namespace ccra {

class FrequencyInfo;
class Module;

class AllocationEngine {
public:
  /// \p Allocator decides colors each round; the engine owns it.
  AllocationEngine(MachineDescription MD, AllocatorOptions Opts,
                   std::unique_ptr<RegAllocBase> Allocator);

  /// Allocates registers for \p F (mutating it) and returns locations,
  /// statistics, and the §3 cost breakdown.
  FunctionAllocation allocateFunction(Function &F,
                                      const FrequencyInfo &Freq) const;

  /// Allocates every function with a body.
  ModuleAllocationResult allocateModule(Module &M,
                                        const FrequencyInfo &Freq) const;

  const MachineDescription &machine() const { return MD; }
  const AllocatorOptions &options() const { return Opts; }

private:
  MachineDescription MD;
  AllocatorOptions Opts;
  std::unique_ptr<RegAllocBase> Allocator;
};

} // namespace ccra

#endif // CCRA_REGALLOC_ALLOCATIONENGINE_H
