//===- regalloc/SpillCodeInserter.cpp -------------------------------------===//

#include "regalloc/SpillCodeInserter.h"

#include <cassert>

using namespace ccra;

SpillCodeInserter::Stats
SpillCodeInserter::run(Function &F,
                       const std::vector<std::vector<VirtReg>> &SpilledClasses) {
  Stats S;
  S.RangesSpilled = static_cast<unsigned>(SpilledClasses.size());
  if (SpilledClasses.empty())
    return S;

  // Map each member register to its class index, and give each class a
  // stack slot.
  std::vector<int> ClassOf(F.numVRegs(), -1);
  std::vector<unsigned> SlotOf(SpilledClasses.size());
  for (size_t C = 0; C < SpilledClasses.size(); ++C) {
    SlotOf[C] = F.createSpillSlot();
    for (VirtReg R : SpilledClasses[C]) {
      assert(ClassOf[R.Id] == -1 && "register spilled twice");
      ClassOf[R.Id] = static_cast<int>(C);
    }
  }

  for (const auto &BB : F.blocks()) {
    auto &Insts = BB->instructions();
    std::vector<Instruction> Out;
    Out.reserve(Insts.size());
    for (Instruction &I : Insts) {
      // Reload each distinct spilled class used by this instruction into
      // one fresh temporary.
      int UsedClass[4];
      VirtReg UsedTemp[4];
      unsigned NumUsed = 0;
      for (VirtReg &U : I.Uses) {
        int C = ClassOf[U.Id];
        if (C < 0)
          continue;
        VirtReg Temp;
        for (unsigned K = 0; K < NumUsed; ++K)
          if (UsedClass[K] == C)
            Temp = UsedTemp[K];
        if (!Temp.isValid()) {
          Temp = F.createSpillTemp(F.vregBank(U));
          assert(NumUsed < 4 && "instruction uses too many spilled classes");
          UsedClass[NumUsed] = C;
          UsedTemp[NumUsed] = Temp;
          ++NumUsed;
          Instruction Load(Opcode::SpillLoad);
          Load.Defs.push_back(Temp);
          Load.SpillSlot = SlotOf[C];
          Load.Overhead = OverheadKind::Spill;
          Out.push_back(std::move(Load));
          ++S.LoadsInserted;
        }
        U = Temp;
      }

      // Rewrite spilled defs to fresh temporaries and store them right
      // after the instruction.
      std::vector<std::pair<VirtReg, unsigned>> StoresAfter;
      for (VirtReg &D : I.Defs) {
        int C = ClassOf[D.Id];
        if (C < 0)
          continue;
        VirtReg Temp = F.createSpillTemp(F.vregBank(D));
        StoresAfter.push_back({Temp, SlotOf[C]});
        D = Temp;
      }
      assert((StoresAfter.empty() || !I.isTerminator()) &&
             "terminators define no registers");
      Out.push_back(std::move(I));
      for (auto [Temp, Slot] : StoresAfter) {
        Instruction Store(Opcode::SpillStore);
        Store.Uses.push_back(Temp);
        Store.SpillSlot = Slot;
        Store.Overhead = OverheadKind::Spill;
        Out.push_back(std::move(Store));
        ++S.StoresInserted;
      }
    }
    Insts = std::move(Out);
  }
  return S;
}
