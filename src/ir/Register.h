//===- ir/Register.h - Virtual registers and register banks -----*- C++ -*-===//
///
/// \file
/// Virtual register handles and the two register banks of the paper's MIPS
/// machine model (separate integer and floating-point register files, §3.2).
///
//===----------------------------------------------------------------------===//

#ifndef CCRA_IR_REGISTER_H
#define CCRA_IR_REGISTER_H

#include <cassert>
#include <cstdint>
#include <functional>

namespace ccra {

/// The MIPS model has two independent register files. Live ranges in
/// different banks never compete for the same physical register.
enum class RegBank : uint8_t { Int = 0, Float = 1 };

inline constexpr unsigned NumRegBanks = 2;

/// Returns "int" or "float".
const char *regBankName(RegBank Bank);

/// A handle to a virtual register. The owning Function records the bank of
/// each virtual register; the handle itself is just a dense index.
struct VirtReg {
  static constexpr unsigned InvalidId = ~0u;

  unsigned Id = InvalidId;

  VirtReg() = default;
  explicit VirtReg(unsigned Id) : Id(Id) {}

  bool isValid() const { return Id != InvalidId; }

  bool operator==(const VirtReg &Other) const { return Id == Other.Id; }
  bool operator!=(const VirtReg &Other) const { return Id != Other.Id; }
  bool operator<(const VirtReg &Other) const { return Id < Other.Id; }
};

/// A physical register: a bank plus an index within that bank's register
/// file. Whether the index denotes a caller-save or callee-save register is
/// decided by the active RegisterConfig (target/MachineDescription.h).
struct PhysReg {
  static constexpr unsigned InvalidIndex = ~0u;

  RegBank Bank = RegBank::Int;
  unsigned Index = InvalidIndex;

  PhysReg() = default;
  PhysReg(RegBank Bank, unsigned Index) : Bank(Bank), Index(Index) {}

  bool isValid() const { return Index != InvalidIndex; }

  bool operator==(const PhysReg &Other) const {
    return Bank == Other.Bank && Index == Other.Index;
  }
  bool operator!=(const PhysReg &Other) const { return !(*this == Other); }
};

} // namespace ccra

template <> struct std::hash<ccra::VirtReg> {
  size_t operator()(const ccra::VirtReg &R) const noexcept {
    return std::hash<unsigned>()(R.Id);
  }
};

#endif // CCRA_IR_REGISTER_H
