//===- ir/Function.h - Functions: blocks + virtual registers ---*- C++ -*-===//
///
/// \file
/// A Function owns its basic blocks (the first block is the entry) and the
/// table of virtual registers. Virtual registers are non-SSA: a register may
/// have several defs, and after the coalescing phase each register
/// congruence class is one live range.
///
//===----------------------------------------------------------------------===//

#ifndef CCRA_IR_FUNCTION_H
#define CCRA_IR_FUNCTION_H

#include "ir/BasicBlock.h"
#include "ir/Register.h"

#include <memory>
#include <string>
#include <vector>

namespace ccra {

class Module;

class Function {
public:
  Function(Module *Parent, std::string Name)
      : Parent(Parent), Name(std::move(Name)) {}

  Module *getParent() const { return Parent; }
  const std::string &getName() const { return Name; }

  /// External functions have no body; calls to them still incur call cost
  /// for the caller's live ranges.
  bool isDeclaration() const { return Blocks.empty(); }

  /// Creates a new basic block owned by this function. The first created
  /// block becomes the entry block.
  BasicBlock *createBlock(std::string BlockName = "");

  BasicBlock *getEntryBlock() const {
    return Blocks.empty() ? nullptr : Blocks.front().get();
  }

  const std::vector<std::unique_ptr<BasicBlock>> &blocks() const {
    return Blocks;
  }
  unsigned numBlocks() const { return static_cast<unsigned>(Blocks.size()); }

  /// Discards the body, turning this function into an external declaration.
  /// Calls to it stay legal (callers keep paying call cost); the vreg table
  /// is kept so existing handles stay in range. Used by the fuzz shrinker.
  void dropBody() { Blocks.clear(); }

  /// Removes every block unreachable from the entry block, fixes the
  /// surviving pred lists, and renumbers block ids densely. Returns the
  /// number of blocks removed. Used by the fuzz shrinker after it rewrites
  /// branches.
  unsigned eraseUnreachableBlocks();

  /// Normalizes every block's predecessor order to block-layout order —
  /// exactly what reparsing the printed form would produce. Frontends
  /// whose output must round-trip byte-exactly call this after building
  /// the CFG (edge insertion order is a lowering artifact; layout order
  /// is canonical).
  void normalizePredecessors();

  /// Merges straight-line block pairs: whenever a block ends in an
  /// unconditional br to a block whose only predecessor it is, the
  /// successor's instructions replace the br and the successor is erased
  /// (the entry block can absorb its successor but is never absorbed).
  /// Returns the number of blocks merged away. Used by the fuzz shrinker
  /// to collapse the br-only chains left behind by other deletions.
  unsigned mergeStraightLineBlocks();

  /// Creates a fresh virtual register in \p Bank.
  VirtReg createVReg(RegBank Bank);

  /// Creates a reload/spill temporary: a virtual register the spiller will
  /// never choose to spill again (its spill cost is treated as infinite,
  /// which the paper's framework relies on for termination: spill code is
  /// inserted into the schedule without reserving registers).
  VirtReg createSpillTemp(RegBank Bank);

  unsigned numVRegs() const { return static_cast<unsigned>(VRegBanks.size()); }
  RegBank vregBank(VirtReg R) const;
  bool isSpillTemp(VirtReg R) const;

  /// Allocates a fresh spill slot (stack home for a spilled live range).
  unsigned createSpillSlot() { return NumSpillSlots++; }
  unsigned numSpillSlots() const { return NumSpillSlots; }

  /// Total program (non-overhead) instructions.
  unsigned countProgramInstructions() const;

private:
  Module *Parent;
  std::string Name;
  std::vector<std::unique_ptr<BasicBlock>> Blocks;
  std::vector<RegBank> VRegBanks;
  std::vector<bool> VRegIsSpillTemp;
  unsigned NumSpillSlots = 0;
};

} // namespace ccra

#endif // CCRA_IR_FUNCTION_H
