//===- ir/IRParser.cpp ----------------------------------------------------===//

#include "ir/IRParser.h"

#include "ir/IRPrinter.h"

#include <cctype>
#include <cstdlib>
#include <map>
#include <sstream>

using namespace ccra;

namespace {

/// Maps printed opcode names back to opcodes.
const std::map<std::string, Opcode> &opcodeByName() {
  static const std::map<std::string, Opcode> Table = [] {
    std::map<std::string, Opcode> M;
    for (unsigned I = 0; I <= static_cast<unsigned>(Opcode::ShuffleMove); ++I) {
      Opcode Op = static_cast<Opcode>(I);
      M[getOpcodeInfo(Op).Name] = Op;
    }
    return M;
  }();
  return Table;
}

class Parser {
public:
  explicit Parser(const std::string &Text) : Input(Text) {}

  ParseResult run();

private:
  // --- Lexical helpers (line oriented) -----------------------------------
  bool nextLine(std::string &Out);

  /// Reports a diagnostic at the current line. When \p Near names the
  /// offending token, its first occurrence in the raw (untrimmed) line
  /// gives the 1-based column, so editors can jump straight to it.
  void error(const std::string &Message, const std::string &Near = "") {
    unsigned Column = 0;
    if (!Near.empty()) {
      size_t Pos = CurrentRaw.find(Near);
      if (Pos != std::string::npos)
        Column = static_cast<unsigned>(Pos) + 1;
    }
    Diags.emplace_back(LineNo, Column, Message, Near);
  }

  static std::string trim(const std::string &S) {
    size_t Begin = S.find_first_not_of(" \t\r");
    if (Begin == std::string::npos)
      return "";
    size_t End = S.find_last_not_of(" \t\r");
    return S.substr(Begin, End - Begin + 1);
  }

  /// Strips a trailing line comment (used for the "; preds:" annotation;
  /// "; succs:" lines are significant and handled before this).
  static std::string stripComment(const std::string &S) {
    size_t Pos = S.find(';');
    return trim(Pos == std::string::npos ? S : S.substr(0, Pos));
  }

  // --- Grammar ------------------------------------------------------------
  bool parseFunction(const std::string &Header);
  bool parseBody(Function &F);
  bool parseInstruction(Function &F, BasicBlock *BB, const std::string &Line);
  bool parseSuccessors(Function &F, BasicBlock *BB, const std::string &Line);

  VirtReg parseReg(Function &F, std::string Token);
  PhysReg parsePhysReg(std::string Token);
  bool splitDefs(const std::string &Line, std::string &DefsText,
                 std::string &RestText);
  std::vector<std::string> splitCommaList(const std::string &Text);

  std::istringstream Input;
  unsigned LineNo = 0;
  /// The raw text of the line currently being parsed (column lookups).
  std::string CurrentRaw;
  std::unique_ptr<Module> M;
  std::vector<Diagnostic> Diags;

  // Per-function state.
  std::map<std::string, BasicBlock *> BlocksByName;
  std::map<unsigned, RegBank> BankOfVReg;
  /// Calls awaiting callee resolution at end of module. Stored as
  /// (block, instruction index): instruction vectors may reallocate while
  /// the block is still being filled.
  struct PendingCall {
    BasicBlock *Block;
    size_t Index;
    std::string Name;
  };
  std::vector<PendingCall> PendingCallees;
};

bool Parser::nextLine(std::string &Out) {
  if (!std::getline(Input, Out))
    return false;
  ++LineNo;
  CurrentRaw = Out;
  return true;
}

ParseResult Parser::run() {
  std::string Line;
  bool SawModule = false;
  while (nextLine(Line)) {
    std::string Text = trim(Line);
    if (Text.empty() || Text[0] == ';')
      continue; // blank or full-line comment (reproducer provenance headers)
    if (Text.rfind("module ", 0) == 0) {
      if (SawModule) {
        error("duplicate 'module' line");
        break;
      }
      SawModule = true;
      M = std::make_unique<Module>(trim(Text.substr(7)));
      continue;
    }
    if (Text.rfind("func ", 0) == 0) {
      if (!SawModule) {
        error("'func' before 'module'");
        break;
      }
      if (!parseFunction(Text))
        break;
      continue;
    }
    error("expected 'module' or 'func', got: " + Text,
          Text.substr(0, Text.find_first_of(" \t")));
    break;
  }
  if (!SawModule && Diags.empty())
    error("no 'module' line found");

  ParseResult Result;
  if (Diags.empty()) {
    // Resolve forward-referenced callees.
    for (const PendingCall &Pending : PendingCallees) {
      Function *Callee = M->getFunction(Pending.Name);
      if (!Callee) {
        Diags.emplace_back(0, 0,
                           "call to unknown function @" + Pending.Name);
        break;
      }
      Pending.Block->instructions()[Pending.Index].Callee = Callee;
    }
  }
  if (Diags.empty())
    Result.M = std::move(M);
  Result.Diags = std::move(Diags);
  Result.Errors = renderDiagnostics(Result.Diags);
  return Result;
}

bool Parser::parseFunction(const std::string &Header) {
  // "func @name {" or "func @name (external)".
  std::string Rest = trim(Header.substr(5));
  if (Rest.empty() || Rest[0] != '@') {
    error("function name must start with '@'",
          Rest.substr(0, Rest.find_first_of(" \t")));
    return false;
  }
  size_t NameEnd = Rest.find_first_of(" \t");
  std::string Name = Rest.substr(1, NameEnd - 1);
  std::string Tail = NameEnd == std::string::npos ? "" : trim(Rest.substr(NameEnd));
  if (M->getFunction(Name)) {
    error("duplicate function @" + Name, "@" + Name);
    return false;
  }
  Function *F = M->createFunction(Name);
  if (Name == "main")
    M->setEntryFunction(F);

  if (Tail == "(external)")
    return true;
  if (Tail != "{") {
    error("expected '{' or '(external)' after function name", Tail);
    return false;
  }
  BlocksByName.clear();
  BankOfVReg.clear();
  return parseBody(*F);
}

bool Parser::parseBody(Function &F) {
  // Two passes over the body text: labels first (so branches can refer to
  // later blocks), then instructions. Collect the body lines up front —
  // raw, so diagnostics can point at the offending token's real column.
  std::vector<std::pair<unsigned, std::string>> Body;
  std::string Line;
  bool Closed = false;
  while (nextLine(Line)) {
    std::string Text = trim(Line);
    if (Text == "}") {
      Closed = true;
      break;
    }
    if (!Text.empty())
      Body.push_back({LineNo, Line});
  }
  if (!Closed) {
    error("missing '}' at end of function @" + F.getName());
    return false;
  }

  for (auto &[No, Raw] : Body) {
    std::string Text = trim(Raw);
    if (Text.rfind("; succs:", 0) == 0 || Text[0] == ';')
      continue;
    std::string Clean = stripComment(Text);
    if (!Clean.empty() && Clean.back() == ':') {
      std::string Label = Clean.substr(0, Clean.size() - 1);
      if (BlocksByName.count(Label)) {
        LineNo = No;
        CurrentRaw = Raw;
        error("duplicate block label '" + Label + "'", Label);
        return false;
      }
      BlocksByName[Label] = F.createBlock(Label);
    }
  }
  if (BlocksByName.empty()) {
    error("function @" + F.getName() + " has no blocks");
    return false;
  }

  BasicBlock *Current = nullptr;
  for (auto &[No, Raw] : Body) {
    LineNo = No;
    CurrentRaw = Raw;
    std::string Text = trim(Raw);
    if (Text.rfind("; succs:", 0) == 0) {
      if (!Current) {
        error("successor list before the first block label");
        return false;
      }
      if (!parseSuccessors(F, Current, trim(Text.substr(8))))
        return false;
      continue;
    }
    if (Text[0] == ';')
      continue; // free-standing comment
    std::string Clean = stripComment(Text);
    if (Clean.empty())
      continue;
    if (Clean.back() == ':') {
      Current = BlocksByName.at(Clean.substr(0, Clean.size() - 1));
      continue;
    }
    if (!Current) {
      error("instruction before first block label");
      return false;
    }
    if (!parseInstruction(F, Current, Clean))
      return false;
  }

  // Materialize the register table now that every reference is known, so
  // printed ids survive the round trip (ids never referenced become
  // integer-bank placeholders).
  unsigned MaxId = BankOfVReg.empty() ? 0 : BankOfVReg.rbegin()->first + 1;
  for (unsigned Id = 0; Id < MaxId; ++Id) {
    auto It = BankOfVReg.find(Id);
    F.createVReg(It == BankOfVReg.end() ? RegBank::Int : It->second);
  }
  return true;
}

VirtReg Parser::parseReg(Function &F, std::string Token) {
  Token = trim(Token);
  if (Token.size() < 3 || Token[0] != '%' ||
      (Token[1] != 'i' && Token[1] != 'f')) {
    error("bad register '" + Token + "'", Token);
    return VirtReg();
  }
  RegBank Bank = Token[1] == 'i' ? RegBank::Int : RegBank::Float;
  char *End = nullptr;
  unsigned long Id = std::strtoul(Token.c_str() + 2, &End, 10);
  if (*End != '\0') {
    error("bad register id in '" + Token + "'", Token);
    return VirtReg();
  }
  (void)F;
  auto [It, Inserted] = BankOfVReg.insert({static_cast<unsigned>(Id), Bank});
  if (!Inserted && It->second != Bank) {
    error("register %" + std::to_string(Id) + " used with two banks", Token);
    return VirtReg();
  }
  return VirtReg(static_cast<unsigned>(Id));
}

PhysReg Parser::parsePhysReg(std::string Token) {
  Token = trim(Token);
  RegBank Bank;
  size_t Digits;
  if (Token.rfind("fp", 0) == 0) {
    Bank = RegBank::Float;
    Digits = 2;
  } else if (!Token.empty() && Token[0] == 'r') {
    Bank = RegBank::Int;
    Digits = 1;
  } else {
    error("bad physical register '" + Token + "'", Token);
    return PhysReg();
  }
  char *End = nullptr;
  unsigned long Index = std::strtoul(Token.c_str() + Digits, &End, 10);
  if (*End != '\0') {
    error("bad physical register '" + Token + "'", Token);
    return PhysReg();
  }
  return PhysReg(Bank, static_cast<unsigned>(Index));
}

bool Parser::splitDefs(const std::string &Line, std::string &DefsText,
                       std::string &RestText) {
  size_t Eq = Line.find(" = ");
  if (Eq == std::string::npos || Line[0] != '%') {
    DefsText.clear();
    RestText = Line;
    return true;
  }
  DefsText = Line.substr(0, Eq);
  RestText = trim(Line.substr(Eq + 3));
  return true;
}

std::vector<std::string> Parser::splitCommaList(const std::string &Text) {
  std::vector<std::string> Parts;
  std::string Current;
  for (char C : Text) {
    if (C == ',') {
      Parts.push_back(trim(Current));
      Current.clear();
    } else {
      Current.push_back(C);
    }
  }
  if (!trim(Current).empty())
    Parts.push_back(trim(Current));
  return Parts;
}

bool Parser::parseInstruction(Function &F, BasicBlock *BB,
                              const std::string &Line) {
  std::string DefsText, Rest;
  splitDefs(Line, DefsText, Rest);

  size_t NameEnd = Rest.find_first_of(" \t");
  std::string OpName = Rest.substr(0, NameEnd);
  std::string Operands =
      NameEnd == std::string::npos ? "" : trim(Rest.substr(NameEnd));

  auto It = opcodeByName().find(OpName);
  if (It == opcodeByName().end()) {
    error("unknown opcode '" + OpName + "'", OpName);
    return false;
  }
  Instruction I(It->second);

  for (const std::string &Token : splitCommaList(DefsText)) {
    VirtReg R = parseReg(F, Token);
    if (!R.isValid())
      return false;
    I.Defs.push_back(R);
  }

  switch (I.Op) {
  case Opcode::LoadImm:
  case Opcode::FLoadImm:
    I.Imm = std::strtoll(Operands.c_str(), nullptr, 10);
    break;
  case Opcode::Call: {
    size_t Paren = Operands.find('(');
    if (Operands.empty() || Operands[0] != '@' ||
        Paren == std::string::npos || Operands.back() != ')') {
      error("malformed call '" + Operands + "'", Operands);
      return false;
    }
    I.CalleeName = Operands.substr(1, Paren - 1);
    std::string Args =
        Operands.substr(Paren + 1, Operands.size() - Paren - 2);
    for (const std::string &Token : splitCommaList(Args)) {
      VirtReg R = parseReg(F, Token);
      if (!R.isValid())
        return false;
      I.Uses.push_back(R);
    }
    break;
  }
  case Opcode::SpillLoad: {
    if (Operands.rfind("slot", 0) != 0) {
      error("spill.load expects a slot operand", Operands);
      return false;
    }
    I.SpillSlot = static_cast<unsigned>(
        std::strtoul(Operands.c_str() + 4, nullptr, 10));
    I.Overhead = OverheadKind::Spill;
    break;
  }
  case Opcode::SpillStore: {
    auto Parts = splitCommaList(Operands);
    if (Parts.size() != 2 || Parts[1].rfind("slot", 0) != 0) {
      error("spill.store expects '%reg, slotN'", Operands);
      return false;
    }
    VirtReg R = parseReg(F, Parts[0]);
    if (!R.isValid())
      return false;
    I.Uses.push_back(R);
    I.SpillSlot = static_cast<unsigned>(
        std::strtoul(Parts[1].c_str() + 4, nullptr, 10));
    I.Overhead = OverheadKind::Spill;
    break;
  }
  case Opcode::Save:
  case Opcode::Restore: {
    I.Phys = parsePhysReg(Operands);
    if (!I.Phys.isValid())
      return false;
    break;
  }
  case Opcode::ShuffleMove: {
    auto Parts = splitCommaList(Operands);
    if (Parts.size() != 2) {
      error("shuffle.move expects two physical registers", Operands);
      return false;
    }
    I.Phys = parsePhysReg(Parts[0]);
    I.PhysSrc = parsePhysReg(Parts[1]);
    if (!I.Phys.isValid() || !I.PhysSrc.isValid())
      return false;
    I.Overhead = OverheadKind::Shuffle;
    break;
  }
  default:
    for (const std::string &Token : splitCommaList(Operands)) {
      VirtReg R = parseReg(F, Token);
      if (!R.isValid())
        return false;
      I.Uses.push_back(R);
    }
    break;
  }

  Instruction &Placed = BB->append(std::move(I));
  if (Placed.isCall())
    PendingCallees.push_back(
        {BB, BB->instructions().size() - 1, Placed.CalleeName});
  return true;
}

bool Parser::parseSuccessors(Function &F, BasicBlock *BB,
                             const std::string &Line) {
  (void)F;
  std::istringstream Stream(Line);
  std::string Token;
  while (Stream >> Token) {
    size_t Paren = Token.find('(');
    if (Paren == std::string::npos || Token.back() != ')') {
      error("malformed successor '" + Token + "'", Token);
      return false;
    }
    std::string Target = Token.substr(0, Paren);
    double Probability =
        std::strtod(Token.substr(Paren + 1, Token.size() - Paren - 2).c_str(),
                    nullptr);
    auto It = BlocksByName.find(Target);
    if (It == BlocksByName.end()) {
      error("successor references unknown block '" + Target + "'", Target);
      return false;
    }
    BB->addSuccessor(It->second, Probability);
  }
  return true;
}

} // namespace

ParseResult ccra::parseModule(const std::string &Text) {
  return Parser(Text).run();
}
