//===- ir/Cloner.h - Deep copies of modules and functions -------*- C++ -*-===//
///
/// \file
/// Register allocation mutates the code (spill and save/restore
/// insertion), so every experiment that compares allocators on the same
/// workload clones the module first and allocates the clone.
///
//===----------------------------------------------------------------------===//

#ifndef CCRA_IR_CLONER_H
#define CCRA_IR_CLONER_H

#include "ir/Module.h"

#include <memory>

namespace ccra {

/// Returns a structurally identical deep copy of \p M. Call targets and
/// CFG edges are remapped into the clone; edge probabilities, register
/// banks, spill-temp flags, and overhead tags are preserved.
std::unique_ptr<Module> cloneModule(const Module &M);

} // namespace ccra

#endif // CCRA_IR_CLONER_H
