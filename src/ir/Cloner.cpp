//===- ir/Cloner.cpp ------------------------------------------------------===//

#include "ir/Cloner.h"

#include <cassert>
#include <unordered_map>

using namespace ccra;

std::unique_ptr<Module> ccra::cloneModule(const Module &M) {
  auto Clone = std::make_unique<Module>(M.getName());

  // First create every function so call targets can be remapped.
  std::unordered_map<const Function *, Function *> FuncMap;
  for (const auto &F : M.functions())
    FuncMap[F.get()] = Clone->createFunction(F->getName());
  if (M.getEntryFunction())
    Clone->setEntryFunction(FuncMap.at(M.getEntryFunction()));

  for (const auto &F : M.functions()) {
    Function *NewF = FuncMap.at(F.get());

    // Recreate the virtual-register table in order.
    for (unsigned V = 0; V < F->numVRegs(); ++V) {
      VirtReg R(V);
      VirtReg NewR = F->isSpillTemp(R)
                         ? NewF->createSpillTemp(F->vregBank(R))
                         : NewF->createVReg(F->vregBank(R));
      assert(NewR.Id == V && "vreg numbering must be preserved");
      (void)NewR;
    }
    for (unsigned S = 0; S < F->numSpillSlots(); ++S)
      NewF->createSpillSlot();

    // Blocks, then instructions and edges.
    std::unordered_map<const BasicBlock *, BasicBlock *> BlockMap;
    for (const auto &BB : F->blocks())
      BlockMap[BB.get()] = NewF->createBlock(BB->getName());
    for (const auto &BB : F->blocks()) {
      BasicBlock *NewBB = BlockMap.at(BB.get());
      for (const Instruction &I : BB->instructions()) {
        Instruction NewI = I;
        if (NewI.Callee)
          NewI.Callee = FuncMap.at(NewI.Callee);
        NewBB->append(std::move(NewI));
      }
      for (const CfgEdge &E : BB->successors())
        NewBB->addSuccessor(BlockMap.at(E.Succ), E.Probability);
    }
  }
  return Clone;
}
