//===- ir/BasicBlock.h - Basic blocks with weighted CFG edges ---*- C++ -*-===//
///
/// \file
/// Basic blocks hold the instruction sequence and the outgoing CFG edges.
/// Each edge carries a branch probability: the workload specs record the
/// *true* probabilities (the "dynamic"/profile frequency source of the
/// paper), while the static frequency estimator deliberately ignores them.
///
//===----------------------------------------------------------------------===//

#ifndef CCRA_IR_BASICBLOCK_H
#define CCRA_IR_BASICBLOCK_H

#include "ir/Instruction.h"

#include <string>
#include <vector>

namespace ccra {

class Function;
class BasicBlock;

/// A CFG edge annotated with its true branch probability.
struct CfgEdge {
  BasicBlock *Succ = nullptr;
  double Probability = 1.0;
};

class BasicBlock {
public:
  BasicBlock(Function *Parent, unsigned Id, std::string Name)
      : Parent(Parent), Id(Id), Name(std::move(Name)) {}

  Function *getParent() const { return Parent; }
  unsigned getId() const { return Id; }
  const std::string &getName() const { return Name; }

  std::vector<Instruction> &instructions() { return Insts; }
  const std::vector<Instruction> &instructions() const { return Insts; }

  /// Appends \p I; terminators may only be appended last.
  Instruction &append(Instruction I);

  /// Returns the terminator, or null if the block is not yet terminated.
  const Instruction *getTerminator() const;
  bool isTerminated() const { return getTerminator() != nullptr; }

  /// Adds a successor edge with probability \p Probability and registers
  /// this block as a predecessor of \p Succ.
  void addSuccessor(BasicBlock *Succ, double Probability = 1.0);

  const std::vector<CfgEdge> &successors() const { return Succs; }
  const std::vector<BasicBlock *> &predecessors() const { return Preds; }

  /// Number of non-overhead instructions (used by workload statistics).
  unsigned countProgramInstructions() const;

  /// Rewrites a condbr terminator into an unconditional br to successor
  /// \p KeepIdx (0 or 1): the other edge is removed (and one matching entry
  /// in its target's pred list), the kept edge's probability becomes 1.
  /// Used by the fuzz shrinker.
  void rewriteCondBrToBr(unsigned KeepIdx);

  /// Internal: drops one occurrence of \p Pred from the predecessor list.
  void removeOnePredecessor(const BasicBlock *Pred);

  /// Internal: splices \p S's instructions and outgoing edges into this
  /// block, which must end in an unconditional br whose single successor
  /// is \p S. \p S is left empty and unlinked (its former successors list
  /// this block as predecessor instead). Used by
  /// Function::mergeStraightLineBlocks.
  void absorbSuccessor(BasicBlock &S);

  /// Internal: reorders the predecessor list into block-layout order (by
  /// block id). Parsing printed IR produces preds in this order, so
  /// normalizing makes print -> parse -> print the identity for modules
  /// whose edges were built in an arbitrary lowering order. Called via
  /// Function::normalizePredecessors.
  void sortPredecessorsByLayout();

  /// Internal: used by Function when renumbering blocks.
  void setId(unsigned NewId) { Id = NewId; }

private:
  Function *Parent;
  unsigned Id;
  std::string Name;
  std::vector<Instruction> Insts;
  std::vector<CfgEdge> Succs;
  std::vector<BasicBlock *> Preds;
};

} // namespace ccra

#endif // CCRA_IR_BASICBLOCK_H
