//===- ir/IRParser.h - Textual IR parsing -----------------------*- C++ -*-===//
///
/// \file
/// Parses the textual form produced by ir/IRPrinter.h back into a Module,
/// so workloads can be stored in files, diffed, and hand-edited. The
/// grammar is line-oriented:
///
/// \code
///   module <name>
///   func @<name> (external)
///   func @<name> {
///   <label>:                      ; preds: ... (comment, ignored)
///     %i0 = loadimm 42
///     %f1 = fadd %f2, %f3
///     %i4 = call @callee(%i0)
///     condbr %i4
///     ; succs: then(0.9) else(0.1)
///   }
/// \endcode
///
/// Register names encode bank and id ("%i7" = integer vreg 7), which the
/// parser preserves, so print -> parse -> print is the identity on every
/// well-formed module (round-trip tested). Spill-temporary flags are the
/// one thing the textual form does not carry.
///
//===----------------------------------------------------------------------===//

#ifndef CCRA_IR_IRPARSER_H
#define CCRA_IR_IRPARSER_H

#include "ir/Module.h"
#include "support/Diagnostic.h"

#include <memory>
#include <string>
#include <vector>

namespace ccra {

/// Result of a parse: the module on success, or null plus diagnostics on
/// failure. Diags carries the structured line:column form (the same
/// support/Diagnostic.h currency the C frontend reports in); Errors is the
/// rendered one-line-per-diagnostic view ("line N:C: message") kept for
/// callers that just print.
struct ParseResult {
  std::unique_ptr<Module> M;
  std::vector<Diagnostic> Diags;
  std::vector<std::string> Errors;

  bool ok() const { return M != nullptr; }
};

/// Parses one module from \p Text.
ParseResult parseModule(const std::string &Text);

} // namespace ccra

#endif // CCRA_IR_IRPARSER_H
