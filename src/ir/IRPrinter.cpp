//===- ir/IRPrinter.cpp ---------------------------------------------------===//

#include "ir/IRPrinter.h"

#include <charconv>
#include <ostream>

using namespace ccra;

namespace {

// The printer feeds the bit-identity contract (responses, the allocation
// cache, fuzz reproducers), so every path below appends to a std::string
// with to_chars — one pass, no ostringstream, no locale — and the stream
// overloads render through the string form. Output bytes are part of the
// wire format; changing them invalidates every committed baseline.

void appendUnsigned(std::string &Out, unsigned long long V) {
  char Buf[24];
  auto R = std::to_chars(Buf, Buf + sizeof(Buf), V);
  Out.append(Buf, R.ptr);
}

void appendInt64(std::string &Out, long long V) {
  char Buf[24];
  auto R = std::to_chars(Buf, Buf + sizeof(Buf), V);
  Out.append(Buf, R.ptr);
}

void appendVReg(std::string &Out, const Function &F, VirtReg R) {
  if (!R.isValid()) {
    Out += "%<invalid>";
    return;
  }
  Out += '%';
  Out += F.vregBank(R) == RegBank::Int ? 'i' : 'f';
  appendUnsigned(Out, R.Id);
}

void appendPhysReg(std::string &Out, PhysReg R) {
  if (!R.isValid()) {
    Out += "<noreg>";
    return;
  }
  Out += R.Bank == RegBank::Int ? "r" : "fp";
  appendUnsigned(Out, R.Index);
}

} // namespace

const char *ccra::regBankName(RegBank Bank) {
  return Bank == RegBank::Int ? "int" : "float";
}

std::string ccra::formatVReg(const Function &F, VirtReg R) {
  std::string Out;
  appendVReg(Out, F, R);
  return Out;
}

std::string ccra::formatPhysReg(PhysReg R) {
  std::string Out;
  appendPhysReg(Out, R);
  return Out;
}

void ccra::formatInstruction(const Function &F, const Instruction &I,
                             std::string &Out) {
  // Defs first: "%i1, %i2 = op ...".
  for (size_t Idx = 0; Idx < I.Defs.size(); ++Idx) {
    if (Idx != 0)
      Out += ", ";
    appendVReg(Out, F, I.Defs[Idx]);
  }
  if (!I.Defs.empty())
    Out += " = ";
  Out += I.info().Name;

  switch (I.Op) {
  case Opcode::LoadImm:
  case Opcode::FLoadImm:
    Out += ' ';
    appendInt64(Out, I.Imm);
    break;
  case Opcode::Call:
    Out += " @";
    Out += I.Callee ? I.Callee->getName() : I.CalleeName;
    Out += '(';
    for (size_t Idx = 0; Idx < I.Uses.size(); ++Idx) {
      if (Idx != 0)
        Out += ", ";
      appendVReg(Out, F, I.Uses[Idx]);
    }
    Out += ')';
    break;
  case Opcode::SpillLoad:
    Out += " slot";
    appendUnsigned(Out, I.SpillSlot);
    break;
  case Opcode::SpillStore:
    Out += ' ';
    appendVReg(Out, F, I.Uses[0]);
    Out += ", slot";
    appendUnsigned(Out, I.SpillSlot);
    break;
  case Opcode::Save:
  case Opcode::Restore:
    Out += ' ';
    appendPhysReg(Out, I.Phys);
    break;
  case Opcode::ShuffleMove:
    Out += ' ';
    appendPhysReg(Out, I.Phys);
    Out += ", ";
    appendPhysReg(Out, I.PhysSrc);
    break;
  default:
    for (size_t Idx = 0; Idx < I.Uses.size(); ++Idx) {
      Out += Idx == 0 ? " " : ", ";
      appendVReg(Out, F, I.Uses[Idx]);
    }
    break;
  }
}

std::string ccra::formatInstruction(const Function &F, const Instruction &I) {
  std::string Out;
  formatInstruction(F, I, Out);
  return Out;
}

void ccra::printFunction(const Function &F, std::string &Out) {
  Out += "func @";
  Out += F.getName();
  if (F.isDeclaration()) {
    Out += " (external)\n";
    return;
  }
  Out += " {\n";
  for (const auto &BB : F.blocks()) {
    Out += BB->getName();
    Out += ':';
    if (!BB->predecessors().empty()) {
      Out += "    ; preds:";
      for (const BasicBlock *Pred : BB->predecessors()) {
        Out += ' ';
        Out += Pred->getName();
      }
    }
    Out += '\n';
    for (const Instruction &I : BB->instructions()) {
      Out += "  ";
      formatInstruction(F, I, Out);
      Out += '\n';
    }
    if (!BB->successors().empty()) {
      Out += "  ; succs:";
      for (const CfgEdge &E : BB->successors()) {
        // Shortest round-trip-exact form: a reparsed module must carry
        // bit-identical probabilities, or flow conservation (exit
        // frequencies summing to the entry frequency) degrades enough to
        // trip the fuzz harness's cost-reconciliation oracle on replay.
        char Prob[32];
        auto [End, Ec] =
            std::to_chars(Prob, Prob + sizeof(Prob), E.Probability);
        (void)Ec;
        Out += ' ';
        Out += E.Succ->getName();
        Out += '(';
        Out.append(Prob, End);
        Out += ')';
      }
      Out += '\n';
    }
  }
  Out += "}\n";
}

void ccra::printModule(const Module &M, std::string &Out) {
  Out += "module ";
  Out += M.getName();
  Out += '\n';
  for (const auto &F : M.functions()) {
    printFunction(*F, Out);
    Out += '\n';
  }
}

void ccra::printFunction(const Function &F, std::ostream &OS) {
  std::string Out;
  printFunction(F, Out);
  OS << Out;
}

void ccra::printModule(const Module &M, std::ostream &OS) {
  std::string Out;
  printModule(M, Out);
  OS << Out;
}
