//===- ir/IRPrinter.cpp ---------------------------------------------------===//

#include "ir/IRPrinter.h"

#include <charconv>
#include <sstream>
#include <string_view>

using namespace ccra;

const char *ccra::regBankName(RegBank Bank) {
  return Bank == RegBank::Int ? "int" : "float";
}

std::string ccra::formatVReg(const Function &F, VirtReg R) {
  if (!R.isValid())
    return "%<invalid>";
  const char Prefix = F.vregBank(R) == RegBank::Int ? 'i' : 'f';
  return std::string("%") + Prefix + std::to_string(R.Id);
}

std::string ccra::formatPhysReg(PhysReg R) {
  if (!R.isValid())
    return "<noreg>";
  return (R.Bank == RegBank::Int ? "r" : "fp") + std::to_string(R.Index);
}

std::string ccra::formatInstruction(const Function &F, const Instruction &I) {
  std::ostringstream OS;
  // Defs first: "%i1, %i2 = op ...".
  for (size_t Idx = 0; Idx < I.Defs.size(); ++Idx) {
    if (Idx != 0)
      OS << ", ";
    OS << formatVReg(F, I.Defs[Idx]);
  }
  if (!I.Defs.empty())
    OS << " = ";
  OS << I.info().Name;

  switch (I.Op) {
  case Opcode::LoadImm:
  case Opcode::FLoadImm:
    OS << ' ' << I.Imm;
    break;
  case Opcode::Call:
    OS << " @" << (I.Callee ? I.Callee->getName() : I.CalleeName) << '(';
    for (size_t Idx = 0; Idx < I.Uses.size(); ++Idx) {
      if (Idx != 0)
        OS << ", ";
      OS << formatVReg(F, I.Uses[Idx]);
    }
    OS << ')';
    break;
  case Opcode::SpillLoad:
    OS << " slot" << I.SpillSlot;
    break;
  case Opcode::SpillStore:
    OS << ' ' << formatVReg(F, I.Uses[0]) << ", slot" << I.SpillSlot;
    break;
  case Opcode::Save:
  case Opcode::Restore:
    OS << ' ' << formatPhysReg(I.Phys);
    break;
  case Opcode::ShuffleMove:
    OS << ' ' << formatPhysReg(I.Phys) << ", " << formatPhysReg(I.PhysSrc);
    break;
  default:
    for (size_t Idx = 0; Idx < I.Uses.size(); ++Idx) {
      OS << (Idx == 0 ? " " : ", ") << formatVReg(F, I.Uses[Idx]);
    }
    break;
  }
  return OS.str();
}

void ccra::printFunction(const Function &F, std::ostream &OS) {
  OS << "func @" << F.getName();
  if (F.isDeclaration()) {
    OS << " (external)\n";
    return;
  }
  OS << " {\n";
  for (const auto &BB : F.blocks()) {
    OS << BB->getName() << ':';
    if (!BB->predecessors().empty()) {
      OS << "    ; preds:";
      for (const BasicBlock *Pred : BB->predecessors())
        OS << ' ' << Pred->getName();
    }
    OS << '\n';
    for (const Instruction &I : BB->instructions())
      OS << "  " << formatInstruction(F, I) << '\n';
    if (!BB->successors().empty()) {
      OS << "  ; succs:";
      for (const CfgEdge &E : BB->successors()) {
        // Shortest round-trip-exact form: a reparsed module must carry
        // bit-identical probabilities, or flow conservation (exit
        // frequencies summing to the entry frequency) degrades enough to
        // trip the fuzz harness's cost-reconciliation oracle on replay.
        char Prob[32];
        auto [End, Ec] =
            std::to_chars(Prob, Prob + sizeof(Prob), E.Probability);
        (void)Ec;
        OS << ' ' << E.Succ->getName() << '('
           << std::string_view(Prob, static_cast<size_t>(End - Prob))
           << ')';
      }
      OS << '\n';
    }
  }
  OS << "}\n";
}

void ccra::printModule(const Module &M, std::ostream &OS) {
  OS << "module " << M.getName() << '\n';
  for (const auto &F : M.functions()) {
    printFunction(*F, OS);
    OS << '\n';
  }
}
