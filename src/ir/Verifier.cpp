//===- ir/Verifier.cpp ----------------------------------------------------===//

#include "ir/Verifier.h"

#include "ir/IRPrinter.h"

#include <cmath>
#include <set>

using namespace ccra;

namespace {

class FunctionVerifier {
public:
  FunctionVerifier(const Function &F, std::vector<std::string> *Errors)
      : F(F), Errors(Errors) {}

  bool run();

private:
  void error(const std::string &Message) {
    Failed = true;
    if (Errors)
      Errors->push_back("function @" + F.getName() + ": " + Message);
  }

  void checkBlock(const BasicBlock &BB);
  void checkInstruction(const BasicBlock &BB, const Instruction &I,
                        bool IsLast);
  void checkOperandSignature(const BasicBlock &BB, const Instruction &I);
  bool checkRegs(const std::vector<VirtReg> &Regs, const BasicBlock &BB,
                 const Instruction &I);
  void expectBank(const Instruction &I, VirtReg R, RegBank Bank,
                  const char *Role);
  void checkDefsExistForUses();
  void checkPredConsistency();

  const Function &F;
  std::vector<std::string> *Errors;
  bool Failed = false;
};

} // namespace

bool FunctionVerifier::run() {
  if (F.isDeclaration())
    return true;
  if (!F.getEntryBlock())
    error("no entry block");
  for (const auto &BB : F.blocks())
    checkBlock(*BB);
  checkDefsExistForUses();
  checkPredConsistency();
  return !Failed;
}

void FunctionVerifier::checkBlock(const BasicBlock &BB) {
  const auto &Insts = BB.instructions();
  if (Insts.empty() || !Insts.back().isTerminator()) {
    error("block " + BB.getName() + " is not terminated");
    return;
  }
  for (size_t Idx = 0; Idx < Insts.size(); ++Idx)
    checkInstruction(BB, Insts[Idx], Idx + 1 == Insts.size());

  // Terminator / successor-edge agreement.
  const Instruction &Term = Insts.back();
  size_t ExpectedSuccs = 0;
  switch (Term.Op) {
  case Opcode::Br:
    ExpectedSuccs = 1;
    break;
  case Opcode::CondBr:
    ExpectedSuccs = 2;
    break;
  case Opcode::Ret:
    ExpectedSuccs = 0;
    break;
  default:
    error("block " + BB.getName() + " has non-terminator last instruction");
    return;
  }
  if (BB.successors().size() != ExpectedSuccs) {
    error("block " + BB.getName() + " terminator expects " +
          std::to_string(ExpectedSuccs) + " successors, has " +
          std::to_string(BB.successors().size()));
    return;
  }
  if (!BB.successors().empty()) {
    double Total = 0.0;
    for (const CfgEdge &E : BB.successors()) {
      if (E.Probability < 0.0 || E.Probability > 1.0)
        error("block " + BB.getName() + " edge probability out of [0,1]");
      if (!E.Succ || E.Succ->getParent() != &F)
        error("block " + BB.getName() + " has foreign successor");
      Total += E.Probability;
    }
    if (std::abs(Total - 1.0) > 1e-6)
      error("block " + BB.getName() + " edge probabilities sum to " +
            std::to_string(Total));
  }
}

void FunctionVerifier::checkInstruction(const BasicBlock &BB,
                                        const Instruction &I, bool IsLast) {
  if (I.isTerminator() && !IsLast)
    error("terminator in the middle of block " + BB.getName());
  if (!checkRegs(I.Defs, BB, I) || !checkRegs(I.Uses, BB, I))
    return;
  checkOperandSignature(BB, I);
}

bool FunctionVerifier::checkRegs(const std::vector<VirtReg> &Regs,
                                 const BasicBlock &BB, const Instruction &I) {
  for (VirtReg R : Regs) {
    if (!R.isValid() || R.Id >= F.numVRegs()) {
      error("instruction '" + std::string(I.info().Name) + "' in block " +
            BB.getName() + " references out-of-range register");
      return false;
    }
  }
  return true;
}

void FunctionVerifier::expectBank(const Instruction &I, VirtReg R,
                                  RegBank Bank, const char *Role) {
  if (F.vregBank(R) != Bank)
    error(std::string("'") + I.info().Name + "' " + Role + " must be " +
          regBankName(Bank) + ", got " + formatVReg(F, R));
}

void FunctionVerifier::checkOperandSignature(const BasicBlock &BB,
                                             const Instruction &I) {
  auto RequireCounts = [&](size_t NumDefs, size_t NumUses) {
    if (I.Defs.size() != NumDefs || I.Uses.size() != NumUses) {
      error(std::string("'") + I.info().Name + "' in block " + BB.getName() +
            " has wrong operand counts");
      return false;
    }
    return true;
  };

  switch (I.Op) {
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::Div:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Shl:
  case Opcode::Shr:
  case Opcode::Cmp:
    if (RequireCounts(1, 2)) {
      expectBank(I, I.Defs[0], RegBank::Int, "result");
      expectBank(I, I.Uses[0], RegBank::Int, "operand");
      expectBank(I, I.Uses[1], RegBank::Int, "operand");
    }
    break;
  case Opcode::LoadImm:
    if (RequireCounts(1, 0))
      expectBank(I, I.Defs[0], RegBank::Int, "result");
    break;
  case Opcode::FLoadImm:
    if (RequireCounts(1, 0))
      expectBank(I, I.Defs[0], RegBank::Float, "result");
    break;
  case Opcode::FAdd:
  case Opcode::FSub:
  case Opcode::FMul:
  case Opcode::FDiv:
    if (RequireCounts(1, 2)) {
      expectBank(I, I.Defs[0], RegBank::Float, "result");
      expectBank(I, I.Uses[0], RegBank::Float, "operand");
      expectBank(I, I.Uses[1], RegBank::Float, "operand");
    }
    break;
  case Opcode::FCmp:
    if (RequireCounts(1, 2)) {
      expectBank(I, I.Defs[0], RegBank::Int, "result");
      expectBank(I, I.Uses[0], RegBank::Float, "operand");
      expectBank(I, I.Uses[1], RegBank::Float, "operand");
    }
    break;
  case Opcode::CvtIntToFloat:
    if (RequireCounts(1, 1)) {
      expectBank(I, I.Defs[0], RegBank::Float, "result");
      expectBank(I, I.Uses[0], RegBank::Int, "operand");
    }
    break;
  case Opcode::CvtFloatToInt:
    if (RequireCounts(1, 1)) {
      expectBank(I, I.Defs[0], RegBank::Int, "result");
      expectBank(I, I.Uses[0], RegBank::Float, "operand");
    }
    break;
  case Opcode::Load:
    if (RequireCounts(1, 1)) {
      expectBank(I, I.Defs[0], RegBank::Int, "result");
      expectBank(I, I.Uses[0], RegBank::Int, "address");
    }
    break;
  case Opcode::FLoad:
    if (RequireCounts(1, 1)) {
      expectBank(I, I.Defs[0], RegBank::Float, "result");
      expectBank(I, I.Uses[0], RegBank::Int, "address");
    }
    break;
  case Opcode::Store:
    if (RequireCounts(0, 2)) {
      expectBank(I, I.Uses[0], RegBank::Int, "value");
      expectBank(I, I.Uses[1], RegBank::Int, "address");
    }
    break;
  case Opcode::FStore:
    if (RequireCounts(0, 2)) {
      expectBank(I, I.Uses[0], RegBank::Float, "value");
      expectBank(I, I.Uses[1], RegBank::Int, "address");
    }
    break;
  case Opcode::Move:
    if (RequireCounts(1, 1)) {
      expectBank(I, I.Defs[0], RegBank::Int, "destination");
      expectBank(I, I.Uses[0], RegBank::Int, "source");
    }
    break;
  case Opcode::FMove:
    if (RequireCounts(1, 1)) {
      expectBank(I, I.Defs[0], RegBank::Float, "destination");
      expectBank(I, I.Uses[0], RegBank::Float, "source");
    }
    break;
  case Opcode::Br:
    RequireCounts(0, 0);
    break;
  case Opcode::CondBr:
    if (RequireCounts(0, 1))
      expectBank(I, I.Uses[0], RegBank::Int, "condition");
    break;
  case Opcode::Ret:
    if (I.Uses.size() > 1)
      error("'ret' returns at most one value");
    if (!I.Defs.empty())
      error("'ret' cannot define registers");
    break;
  case Opcode::Call:
    if (!I.Callee && I.CalleeName.empty())
      error("call without callee in block " + BB.getName());
    break;
  case Opcode::SpillLoad:
    if (RequireCounts(1, 0) && I.SpillSlot == ~0u)
      error("spill.load without slot");
    break;
  case Opcode::SpillStore:
    if (RequireCounts(0, 1) && I.SpillSlot == ~0u)
      error("spill.store without slot");
    break;
  case Opcode::Save:
  case Opcode::Restore:
    if (RequireCounts(0, 0) && !I.Phys.isValid())
      error("save/restore without physical register");
    break;
  case Opcode::ShuffleMove:
    if (RequireCounts(0, 0) && (!I.Phys.isValid() || !I.PhysSrc.isValid()))
      error("shuffle.move without physical registers");
    break;
  }
}

void FunctionVerifier::checkDefsExistForUses() {
  std::set<unsigned> Defined;
  for (const auto &BB : F.blocks())
    for (const Instruction &I : BB->instructions())
      for (VirtReg R : I.Defs)
        Defined.insert(R.Id);
  for (const auto &BB : F.blocks())
    for (const Instruction &I : BB->instructions())
      for (VirtReg R : I.Uses)
        if (!Defined.count(R.Id))
          error("register " + formatVReg(F, R) + " used but never defined");
}

void FunctionVerifier::checkPredConsistency() {
  // Every successor edge must be mirrored in the successor's pred list, and
  // vice versa (counting multiplicity).
  for (const auto &BB : F.blocks()) {
    for (const CfgEdge &E : BB->successors()) {
      size_t Mirrored = 0;
      for (const BasicBlock *Pred : E.Succ->predecessors())
        if (Pred == BB.get())
          ++Mirrored;
      size_t Outgoing = 0;
      for (const CfgEdge &E2 : BB->successors())
        if (E2.Succ == E.Succ)
          ++Outgoing;
      if (Mirrored != Outgoing)
        error("pred/succ lists disagree between " + BB->getName() + " and " +
              E.Succ->getName());
    }
  }
}

bool ccra::verifyFunction(const Function &F, std::vector<std::string> *Errors) {
  return FunctionVerifier(F, Errors).run();
}

bool ccra::verifyModule(const Module &M, std::vector<std::string> *Errors) {
  bool Ok = true;
  for (const auto &F : M.functions())
    Ok &= verifyFunction(*F, Errors);
  return Ok;
}
