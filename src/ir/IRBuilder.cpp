//===- ir/IRBuilder.cpp ---------------------------------------------------===//

#include "ir/IRBuilder.h"

#include <cassert>

using namespace ccra;

Instruction &IRBuilder::emit(Instruction I) {
  assert(Block && "no insertion block set");
  return Block->append(std::move(I));
}

BasicBlock *IRBuilder::startBlock(const std::string &Name) {
  Block = F.createBlock(Name);
  return Block;
}

VirtReg IRBuilder::buildLoadImm(int64_t Value) {
  Instruction I(Opcode::LoadImm);
  VirtReg Dest = F.createVReg(RegBank::Int);
  I.Defs.push_back(Dest);
  I.Imm = Value;
  emit(std::move(I));
  return Dest;
}

VirtReg IRBuilder::buildFLoadImm(int64_t Value) {
  Instruction I(Opcode::FLoadImm);
  VirtReg Dest = F.createVReg(RegBank::Float);
  I.Defs.push_back(Dest);
  I.Imm = Value;
  emit(std::move(I));
  return Dest;
}

/// Returns the bank the operands (and result) of an arithmetic opcode must
/// be in.
static RegBank arithmeticBank(Opcode Op) {
  switch (Op) {
  case Opcode::FAdd:
  case Opcode::FSub:
  case Opcode::FMul:
  case Opcode::FDiv:
    return RegBank::Float;
  default:
    return RegBank::Int;
  }
}

VirtReg IRBuilder::buildBinary(Opcode Op, VirtReg Lhs, VirtReg Rhs) {
  RegBank Bank = arithmeticBank(Op);
  VirtReg Dest = F.createVReg(Bank);
  buildBinaryInto(Dest, Op, Lhs, Rhs);
  return Dest;
}

void IRBuilder::buildBinaryInto(VirtReg Dest, Opcode Op, VirtReg Lhs,
                                VirtReg Rhs) {
  [[maybe_unused]] RegBank Bank = arithmeticBank(Op);
  assert(F.vregBank(Lhs) == Bank && F.vregBank(Rhs) == Bank &&
         F.vregBank(Dest) == Bank && "operand bank mismatch");
  Instruction I(Op);
  I.Defs.push_back(Dest);
  I.Uses.push_back(Lhs);
  I.Uses.push_back(Rhs);
  emit(std::move(I));
}

VirtReg IRBuilder::buildCmp(VirtReg Lhs, VirtReg Rhs) {
  assert(F.vregBank(Lhs) == RegBank::Int && F.vregBank(Rhs) == RegBank::Int &&
         "cmp operands must be integer");
  Instruction I(Opcode::Cmp);
  VirtReg Dest = F.createVReg(RegBank::Int);
  I.Defs.push_back(Dest);
  I.Uses.push_back(Lhs);
  I.Uses.push_back(Rhs);
  emit(std::move(I));
  return Dest;
}

VirtReg IRBuilder::buildFCmp(VirtReg Lhs, VirtReg Rhs) {
  assert(F.vregBank(Lhs) == RegBank::Float &&
         F.vregBank(Rhs) == RegBank::Float && "fcmp operands must be float");
  Instruction I(Opcode::FCmp);
  VirtReg Dest = F.createVReg(RegBank::Int);
  I.Defs.push_back(Dest);
  I.Uses.push_back(Lhs);
  I.Uses.push_back(Rhs);
  emit(std::move(I));
  return Dest;
}

VirtReg IRBuilder::buildCvtIntToFloat(VirtReg Src) {
  assert(F.vregBank(Src) == RegBank::Int && "source must be integer");
  Instruction I(Opcode::CvtIntToFloat);
  VirtReg Dest = F.createVReg(RegBank::Float);
  I.Defs.push_back(Dest);
  I.Uses.push_back(Src);
  emit(std::move(I));
  return Dest;
}

VirtReg IRBuilder::buildCvtFloatToInt(VirtReg Src) {
  assert(F.vregBank(Src) == RegBank::Float && "source must be float");
  Instruction I(Opcode::CvtFloatToInt);
  VirtReg Dest = F.createVReg(RegBank::Int);
  I.Defs.push_back(Dest);
  I.Uses.push_back(Src);
  emit(std::move(I));
  return Dest;
}

VirtReg IRBuilder::buildLoad(VirtReg Address) {
  assert(F.vregBank(Address) == RegBank::Int && "address must be integer");
  Instruction I(Opcode::Load);
  VirtReg Dest = F.createVReg(RegBank::Int);
  I.Defs.push_back(Dest);
  I.Uses.push_back(Address);
  emit(std::move(I));
  return Dest;
}

VirtReg IRBuilder::buildFLoad(VirtReg Address) {
  assert(F.vregBank(Address) == RegBank::Int && "address must be integer");
  Instruction I(Opcode::FLoad);
  VirtReg Dest = F.createVReg(RegBank::Float);
  I.Defs.push_back(Dest);
  I.Uses.push_back(Address);
  emit(std::move(I));
  return Dest;
}

void IRBuilder::buildStore(VirtReg Value, VirtReg Address) {
  assert(F.vregBank(Value) == RegBank::Int && "store value must be integer");
  assert(F.vregBank(Address) == RegBank::Int && "address must be integer");
  Instruction I(Opcode::Store);
  I.Uses.push_back(Value);
  I.Uses.push_back(Address);
  emit(std::move(I));
}

void IRBuilder::buildFStore(VirtReg Value, VirtReg Address) {
  assert(F.vregBank(Value) == RegBank::Float && "fstore value must be float");
  assert(F.vregBank(Address) == RegBank::Int && "address must be integer");
  Instruction I(Opcode::FStore);
  I.Uses.push_back(Value);
  I.Uses.push_back(Address);
  emit(std::move(I));
}

VirtReg IRBuilder::buildMove(VirtReg Src) {
  VirtReg Dest = F.createVReg(F.vregBank(Src));
  buildMoveTo(Dest, Src);
  return Dest;
}

void IRBuilder::buildMoveTo(VirtReg Dest, VirtReg Src) {
  assert(F.vregBank(Dest) == F.vregBank(Src) && "move across banks");
  Instruction I(F.vregBank(Src) == RegBank::Int ? Opcode::Move
                                                : Opcode::FMove);
  I.Defs.push_back(Dest);
  I.Uses.push_back(Src);
  emit(std::move(I));
}

std::vector<VirtReg>
IRBuilder::buildCall(Function *Callee, const std::vector<VirtReg> &Args,
                     const std::vector<RegBank> &ReturnBanks) {
  assert(Callee && "null callee");
  Instruction I(Opcode::Call);
  I.Callee = Callee;
  I.CalleeName = Callee->getName();
  I.Uses = Args;
  std::vector<VirtReg> Results;
  for (RegBank Bank : ReturnBanks) {
    VirtReg R = F.createVReg(Bank);
    I.Defs.push_back(R);
    Results.push_back(R);
  }
  emit(std::move(I));
  return Results;
}

void IRBuilder::buildBr(BasicBlock *Target) {
  emit(Instruction(Opcode::Br));
  Block->addSuccessor(Target, 1.0);
}

void IRBuilder::buildCondBr(VirtReg Cond, BasicBlock *TrueTarget,
                            BasicBlock *FalseTarget, double TrueProbability) {
  assert(F.vregBank(Cond) == RegBank::Int && "condition must be integer");
  assert(TrueProbability >= 0.0 && TrueProbability <= 1.0 &&
         "probability out of range");
  Instruction I(Opcode::CondBr);
  I.Uses.push_back(Cond);
  emit(std::move(I));
  Block->addSuccessor(TrueTarget, TrueProbability);
  Block->addSuccessor(FalseTarget, 1.0 - TrueProbability);
}

void IRBuilder::buildRet() { emit(Instruction(Opcode::Ret)); }

void IRBuilder::buildRet(VirtReg Value) {
  Instruction I(Opcode::Ret);
  I.Uses.push_back(Value);
  emit(std::move(I));
}
