//===- ir/IRBuilder.h - Convenience instruction emission --------*- C++ -*-===//
///
/// \file
/// IRBuilder provides checked, one-call emission of each instruction kind
/// into a current insertion block. The synthetic workload generator and the
/// examples use it; tests use it to build the paper's illustrative graphs
/// (Figures 3, 4, 5, 8) as real code.
///
//===----------------------------------------------------------------------===//

#ifndef CCRA_IR_IRBUILDER_H
#define CCRA_IR_IRBUILDER_H

#include "ir/Function.h"

#include <vector>

namespace ccra {

class IRBuilder {
public:
  explicit IRBuilder(Function &F) : F(F) {}

  Function &getFunction() { return F; }

  void setInsertBlock(BasicBlock *BB) { Block = BB; }
  BasicBlock *getInsertBlock() const { return Block; }

  /// Creates a block and makes it the insertion point.
  BasicBlock *startBlock(const std::string &Name = "");

  // Value producers -------------------------------------------------------
  VirtReg buildLoadImm(int64_t Value);
  VirtReg buildFLoadImm(int64_t Value);
  /// Integer or floating-point binary arithmetic. Operand banks must match
  /// the opcode.
  VirtReg buildBinary(Opcode Op, VirtReg Lhs, VirtReg Rhs);
  /// Binary arithmetic writing into an existing register (non-SSA reuse).
  void buildBinaryInto(VirtReg Dest, Opcode Op, VirtReg Lhs, VirtReg Rhs);
  VirtReg buildCmp(VirtReg Lhs, VirtReg Rhs);
  VirtReg buildFCmp(VirtReg Lhs, VirtReg Rhs);
  VirtReg buildCvtIntToFloat(VirtReg Src);
  VirtReg buildCvtFloatToInt(VirtReg Src);
  VirtReg buildLoad(VirtReg Address);
  VirtReg buildFLoad(VirtReg Address);
  void buildStore(VirtReg Value, VirtReg Address);
  void buildFStore(VirtReg Value, VirtReg Address);

  /// Copy into a fresh register of the same bank.
  VirtReg buildMove(VirtReg Src);
  /// Copy into an existing register of the same bank.
  void buildMoveTo(VirtReg Dest, VirtReg Src);

  /// Emits a call. \p ReturnBanks lists the banks of the returned values
  /// (usually zero or one). Returns the fresh result registers.
  std::vector<VirtReg> buildCall(Function *Callee,
                                 const std::vector<VirtReg> &Args,
                                 const std::vector<RegBank> &ReturnBanks = {});

  // Terminators ------------------------------------------------------------
  void buildBr(BasicBlock *Target);
  /// Conditional branch: \p TrueProbability is the profile-truth probability
  /// of taking \p TrueTarget.
  void buildCondBr(VirtReg Cond, BasicBlock *TrueTarget,
                   BasicBlock *FalseTarget, double TrueProbability = 0.5);
  void buildRet();
  void buildRet(VirtReg Value);

private:
  Instruction &emit(Instruction I);

  Function &F;
  BasicBlock *Block = nullptr;
};

} // namespace ccra

#endif // CCRA_IR_IRBUILDER_H
