//===- ir/Instruction.cpp -------------------------------------------------===//

#include "ir/Instruction.h"

#include <cassert>

using namespace ccra;

const OpcodeInfo &ccra::getOpcodeInfo(Opcode Op) {
  // Fields: Name, IsTerminator, IsCall, IsMemory, IsMove, IsOverhead.
  static const OpcodeInfo Table[] = {
      {"add", false, false, false, false, false},
      {"sub", false, false, false, false, false},
      {"mul", false, false, false, false, false},
      {"div", false, false, false, false, false},
      {"and", false, false, false, false, false},
      {"or", false, false, false, false, false},
      {"xor", false, false, false, false, false},
      {"shl", false, false, false, false, false},
      {"shr", false, false, false, false, false},
      {"cmp", false, false, false, false, false},
      {"loadimm", false, false, false, false, false},
      {"floadimm", false, false, false, false, false},
      {"fadd", false, false, false, false, false},
      {"fsub", false, false, false, false, false},
      {"fmul", false, false, false, false, false},
      {"fdiv", false, false, false, false, false},
      {"fcmp", false, false, false, false, false},
      {"cvt.i2f", false, false, false, false, false},
      {"cvt.f2i", false, false, false, false, false},
      {"load", false, false, true, false, false},
      {"store", false, false, true, false, false},
      {"fload", false, false, true, false, false},
      {"fstore", false, false, true, false, false},
      {"move", false, false, false, true, false},
      {"fmove", false, false, false, true, false},
      {"br", true, false, false, false, false},
      {"condbr", true, false, false, false, false},
      {"ret", true, false, false, false, false},
      {"call", false, true, false, false, false},
      {"spill.load", false, false, true, false, true},
      {"spill.store", false, false, true, false, true},
      {"save", false, false, true, false, true},
      {"restore", false, false, true, false, true},
      {"shuffle.move", false, false, false, false, true},
  };
  static_assert(sizeof(Table) / sizeof(Table[0]) ==
                    static_cast<size_t>(Opcode::ShuffleMove) + 1,
                "opcode table out of sync with Opcode enum");
  return Table[static_cast<size_t>(Op)];
}

VirtReg Instruction::moveSource() const {
  assert(isMove() && Uses.size() == 1 && "not a coalescable move");
  return Uses[0];
}

VirtReg Instruction::moveDest() const {
  assert(isMove() && Defs.size() == 1 && "not a coalescable move");
  return Defs[0];
}
