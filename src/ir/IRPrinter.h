//===- ir/IRPrinter.h - Textual IR dumping ----------------------*- C++ -*-===//
///
/// \file
/// Human-readable dumping of modules, functions, and instructions. Virtual
/// registers print as %iN / %fN by bank; allocated code (after overhead
/// materialization) also shows physical registers and spill slots.
///
//===----------------------------------------------------------------------===//

#ifndef CCRA_IR_IRPRINTER_H
#define CCRA_IR_IRPRINTER_H

#include "ir/Module.h"

#include <ostream>
#include <string>

namespace ccra {

/// Renders one virtual register as "%i7" / "%f3".
std::string formatVReg(const Function &F, VirtReg R);

/// Renders a physical register as "r5" / "fp2".
std::string formatPhysReg(PhysReg R);

/// Renders one instruction (no trailing newline).
std::string formatInstruction(const Function &F, const Instruction &I);

/// Append forms: identical bytes, no ostream in the loop. These are the
/// serving hot path — the daemon prints every allocated function into the
/// response (and the cache) for each cold request, so the printer budget
/// is charged against `serve.batch` in the soak, not just dump quality.
void formatInstruction(const Function &F, const Instruction &I,
                       std::string &Out);
void printFunction(const Function &F, std::string &Out);
void printModule(const Module &M, std::string &Out);

void printFunction(const Function &F, std::ostream &OS);
void printModule(const Module &M, std::ostream &OS);

} // namespace ccra

#endif // CCRA_IR_IRPRINTER_H
