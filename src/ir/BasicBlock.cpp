//===- ir/BasicBlock.cpp --------------------------------------------------===//

#include "ir/BasicBlock.h"

#include <cassert>

using namespace ccra;

Instruction &BasicBlock::append(Instruction I) {
  assert(!isTerminated() && "appending to a terminated block");
  Insts.push_back(std::move(I));
  return Insts.back();
}

const Instruction *BasicBlock::getTerminator() const {
  if (Insts.empty())
    return nullptr;
  const Instruction &Last = Insts.back();
  return Last.isTerminator() ? &Last : nullptr;
}

void BasicBlock::addSuccessor(BasicBlock *Succ, double Probability) {
  assert(Succ && "null successor");
  Succs.push_back(CfgEdge{Succ, Probability});
  Succ->Preds.push_back(this);
}

unsigned BasicBlock::countProgramInstructions() const {
  unsigned Count = 0;
  for (const Instruction &I : Insts)
    if (!I.isOverhead())
      ++Count;
  return Count;
}
