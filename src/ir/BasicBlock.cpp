//===- ir/BasicBlock.cpp --------------------------------------------------===//

#include "ir/BasicBlock.h"

#include <algorithm>
#include <cassert>

using namespace ccra;

Instruction &BasicBlock::append(Instruction I) {
  assert(!isTerminated() && "appending to a terminated block");
  Insts.push_back(std::move(I));
  return Insts.back();
}

const Instruction *BasicBlock::getTerminator() const {
  if (Insts.empty())
    return nullptr;
  const Instruction &Last = Insts.back();
  return Last.isTerminator() ? &Last : nullptr;
}

void BasicBlock::addSuccessor(BasicBlock *Succ, double Probability) {
  assert(Succ && "null successor");
  Succs.push_back(CfgEdge{Succ, Probability});
  Succ->Preds.push_back(this);
}

void BasicBlock::rewriteCondBrToBr(unsigned KeepIdx) {
  assert(getTerminator() && getTerminator()->Op == Opcode::CondBr &&
         "terminator is not a condbr");
  assert(KeepIdx < Succs.size() && Succs.size() == 2 &&
         "condbr must have two successors");
  Succs[1 - KeepIdx].Succ->removeOnePredecessor(this);
  CfgEdge Kept = Succs[KeepIdx];
  Kept.Probability = 1.0;
  Succs.assign(1, Kept);
  Insts.back() = Instruction(Opcode::Br);
}

void BasicBlock::removeOnePredecessor(const BasicBlock *Pred) {
  for (auto It = Preds.begin(); It != Preds.end(); ++It)
    if (*It == Pred) {
      Preds.erase(It);
      return;
    }
  assert(false && "predecessor not found");
}

void BasicBlock::sortPredecessorsByLayout() {
  std::stable_sort(Preds.begin(), Preds.end(),
                   [](const BasicBlock *A, const BasicBlock *B) {
                     return A->getId() < B->getId();
                   });
}

void BasicBlock::absorbSuccessor(BasicBlock &S) {
  assert(getTerminator() && getTerminator()->Op == Opcode::Br &&
         Succs.size() == 1 && Succs[0].Succ == &S &&
         "absorb requires an unconditional edge to the absorbed block");
  assert(&S != this && "cannot absorb a self-loop");
  Insts.pop_back(); // the br
  for (Instruction &I : S.Insts)
    Insts.push_back(std::move(I));
  Succs = std::move(S.Succs);
  for (CfgEdge &E : Succs)
    for (BasicBlock *&P : E.Succ->Preds)
      if (P == &S)
        P = this;
  S.Insts.clear();
  S.Succs.clear();
  S.Preds.clear();
}

unsigned BasicBlock::countProgramInstructions() const {
  unsigned Count = 0;
  for (const Instruction &I : Insts)
    if (!I.isOverhead())
      ++Count;
  return Count;
}
