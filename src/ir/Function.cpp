//===- ir/Function.cpp ----------------------------------------------------===//

#include "ir/Function.h"

#include <cassert>

using namespace ccra;

BasicBlock *Function::createBlock(std::string BlockName) {
  unsigned Id = static_cast<unsigned>(Blocks.size());
  if (BlockName.empty())
    BlockName = "bb" + std::to_string(Id);
  Blocks.push_back(
      std::make_unique<BasicBlock>(this, Id, std::move(BlockName)));
  return Blocks.back().get();
}

VirtReg Function::createVReg(RegBank Bank) {
  VRegBanks.push_back(Bank);
  VRegIsSpillTemp.push_back(false);
  return VirtReg(static_cast<unsigned>(VRegBanks.size()) - 1);
}

VirtReg Function::createSpillTemp(RegBank Bank) {
  VirtReg R = createVReg(Bank);
  VRegIsSpillTemp[R.Id] = true;
  return R;
}

RegBank Function::vregBank(VirtReg R) const {
  assert(R.Id < VRegBanks.size() && "virtual register out of range");
  return VRegBanks[R.Id];
}

bool Function::isSpillTemp(VirtReg R) const {
  assert(R.Id < VRegIsSpillTemp.size() && "virtual register out of range");
  return VRegIsSpillTemp[R.Id];
}

unsigned Function::eraseUnreachableBlocks() {
  if (Blocks.empty())
    return 0;
  std::vector<bool> Reachable(Blocks.size(), false);
  std::vector<BasicBlock *> Work{getEntryBlock()};
  Reachable[getEntryBlock()->getId()] = true;
  while (!Work.empty()) {
    BasicBlock *BB = Work.back();
    Work.pop_back();
    for (const CfgEdge &E : BB->successors())
      if (!Reachable[E.Succ->getId()]) {
        Reachable[E.Succ->getId()] = true;
        Work.push_back(E.Succ);
      }
  }

  unsigned Removed = 0;
  for (const auto &BB : Blocks)
    if (!Reachable[BB->getId()])
      ++Removed;
  if (Removed == 0)
    return 0;

  // Unlink edges leaving dead blocks from the surviving pred lists, then
  // drop the dead blocks and renumber the rest densely.
  for (const auto &BB : Blocks)
    if (!Reachable[BB->getId()])
      for (const CfgEdge &E : BB->successors())
        if (Reachable[E.Succ->getId()])
          E.Succ->removeOnePredecessor(BB.get());
  std::vector<std::unique_ptr<BasicBlock>> Kept;
  Kept.reserve(Blocks.size() - Removed);
  for (auto &BB : Blocks)
    if (Reachable[BB->getId()])
      Kept.push_back(std::move(BB));
  Blocks = std::move(Kept);
  for (unsigned I = 0; I < Blocks.size(); ++I)
    Blocks[I]->setId(I);
  return Removed;
}

unsigned Function::mergeStraightLineBlocks() {
  unsigned Merged = 0;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (auto &BB : Blocks) {
      const Instruction *Term = BB->getTerminator();
      if (!Term || Term->Op != Opcode::Br || BB->successors().size() != 1)
        continue;
      BasicBlock *S = BB->successors()[0].Succ;
      if (S == BB.get() || S == getEntryBlock() ||
          S->predecessors().size() != 1)
        continue;
      BB->absorbSuccessor(*S);
      ++Merged;
      Changed = true;
    }
  }
  // The absorbed blocks are now empty and predecessor-less; reachability
  // cleanup drops them and renumbers the survivors.
  if (Merged)
    eraseUnreachableBlocks();
  return Merged;
}

void Function::normalizePredecessors() {
  for (const auto &BB : Blocks)
    BB->sortPredecessorsByLayout();
}

unsigned Function::countProgramInstructions() const {
  unsigned Count = 0;
  for (const auto &BB : Blocks)
    Count += BB->countProgramInstructions();
  return Count;
}
