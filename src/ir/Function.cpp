//===- ir/Function.cpp ----------------------------------------------------===//

#include "ir/Function.h"

#include <cassert>

using namespace ccra;

BasicBlock *Function::createBlock(std::string BlockName) {
  unsigned Id = static_cast<unsigned>(Blocks.size());
  if (BlockName.empty())
    BlockName = "bb" + std::to_string(Id);
  Blocks.push_back(
      std::make_unique<BasicBlock>(this, Id, std::move(BlockName)));
  return Blocks.back().get();
}

VirtReg Function::createVReg(RegBank Bank) {
  VRegBanks.push_back(Bank);
  VRegIsSpillTemp.push_back(false);
  return VirtReg(static_cast<unsigned>(VRegBanks.size()) - 1);
}

VirtReg Function::createSpillTemp(RegBank Bank) {
  VirtReg R = createVReg(Bank);
  VRegIsSpillTemp[R.Id] = true;
  return R;
}

RegBank Function::vregBank(VirtReg R) const {
  assert(R.Id < VRegBanks.size() && "virtual register out of range");
  return VRegBanks[R.Id];
}

bool Function::isSpillTemp(VirtReg R) const {
  assert(R.Id < VRegIsSpillTemp.size() && "virtual register out of range");
  return VRegIsSpillTemp[R.Id];
}

unsigned Function::countProgramInstructions() const {
  unsigned Count = 0;
  for (const auto &BB : Blocks)
    Count += BB->countProgramInstructions();
  return Count;
}
