//===- ir/Module.h - A program: functions + entry point ---------*- C++ -*-===//
///
/// \file
/// A Module is a whole program: a set of functions, one of which ("main")
/// is the entry point used by the interprocedural frequency analysis to
/// derive per-function invocation counts.
///
//===----------------------------------------------------------------------===//

#ifndef CCRA_IR_MODULE_H
#define CCRA_IR_MODULE_H

#include "ir/Function.h"

#include <memory>
#include <string>
#include <vector>

namespace ccra {

class Module {
public:
  explicit Module(std::string Name) : Name(std::move(Name)) {}

  const std::string &getName() const { return Name; }

  /// Creates a function (with a body to be filled in, or left empty for an
  /// external declaration).
  Function *createFunction(const std::string &FuncName);

  /// Finds a function by name; returns null if absent.
  Function *getFunction(const std::string &FuncName) const;

  const std::vector<std::unique_ptr<Function>> &functions() const {
    return Functions;
  }

  /// Designates the program entry point. Defaults to the function named
  /// "main" when present.
  void setEntryFunction(Function *F) { Entry = F; }
  Function *getEntryFunction() const;

private:
  std::string Name;
  std::vector<std::unique_ptr<Function>> Functions;
  Function *Entry = nullptr;
};

} // namespace ccra

#endif // CCRA_IR_MODULE_H
