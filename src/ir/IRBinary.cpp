//===- ir/IRBinary.cpp ----------------------------------------------------===//

#include "ir/IRBinary.h"

#include <cstring>
#include <unordered_map>

using namespace ccra;

namespace {

constexpr std::uint32_t BinaryMagic = 0x32524943; // "CIR2" in LE bytes

// --- Writer --------------------------------------------------------------

void putVarint(std::string &Out, std::uint64_t V) {
  while (V >= 0x80) {
    Out.push_back(static_cast<char>((V & 0x7f) | 0x80));
    V >>= 7;
  }
  Out.push_back(static_cast<char>(V));
}

void putZigzag(std::string &Out, std::int64_t V) {
  putVarint(Out, (static_cast<std::uint64_t>(V) << 1) ^
                     static_cast<std::uint64_t>(V >> 63));
}

void putString(std::string &Out, const std::string &S) {
  putVarint(Out, S.size());
  Out += S;
}

void putDouble(std::string &Out, double V) {
  std::uint64_t Bits;
  std::memcpy(&Bits, &V, sizeof(Bits));
  for (int Shift = 0; Shift < 64; Shift += 8)
    Out.push_back(static_cast<char>((Bits >> Shift) & 0xff));
}

void putPhysReg(std::string &Out, PhysReg R) {
  Out.push_back(static_cast<char>(R.Bank));
  putVarint(Out, R.Index);
}

void putRegList(std::string &Out, const std::vector<VirtReg> &Regs) {
  putVarint(Out, Regs.size());
  for (VirtReg R : Regs)
    putVarint(Out, R.Id);
}

bool failEncode(std::string *Err, const std::string &Message) {
  if (Err)
    *Err = Message;
  return false;
}

// --- Reader --------------------------------------------------------------

class Reader {
public:
  explicit Reader(const std::string &Bytes)
      : P(Bytes.data()), N(Bytes.size()) {}

  bool u8(std::uint8_t &Out) {
    if (Pos >= N)
      return false;
    Out = static_cast<std::uint8_t>(P[Pos++]);
    return true;
  }

  bool u32(std::uint32_t &Out) {
    if (N - Pos < 4)
      return false;
    Out = 0;
    for (int Shift = 0; Shift < 32; Shift += 8)
      Out |= static_cast<std::uint32_t>(static_cast<unsigned char>(P[Pos++]))
             << Shift;
    return true;
  }

  bool varint(std::uint64_t &Out) {
    Out = 0;
    for (int Shift = 0; Shift < 64; Shift += 7) {
      if (Pos >= N)
        return false;
      unsigned char B = static_cast<unsigned char>(P[Pos++]);
      // The 10th byte can only carry bit 63: anything above (including a
      // further continuation bit) is a non-canonical encoding whose high
      // bits the shift would silently discard, letting two distinct byte
      // strings decode to the same value. Reject it.
      if (Shift == 63 && B > 1)
        return false;
      Out |= static_cast<std::uint64_t>(B & 0x7f) << Shift;
      if (!(B & 0x80))
        return true;
    }
    return false; // continuation past 64 bits: not a valid varint
  }

  bool zigzag(std::int64_t &Out) {
    std::uint64_t V;
    if (!varint(V))
      return false;
    Out = static_cast<std::int64_t>((V >> 1) ^ (~(V & 1) + 1));
    return true;
  }

  bool str(std::string &Out) {
    std::uint64_t Len;
    if (!varint(Len) || Len > N - Pos)
      return false;
    Out.assign(P + Pos, Len);
    Pos += Len;
    return true;
  }

  bool dbl(double &Out) {
    if (N - Pos < 8)
      return false;
    std::uint64_t Bits = 0;
    for (int Shift = 0; Shift < 64; Shift += 8)
      Bits |= static_cast<std::uint64_t>(static_cast<unsigned char>(P[Pos++]))
              << Shift;
    std::memcpy(&Out, &Bits, sizeof(Out));
    return true;
  }

  /// A count of items that each occupy at least one encoded byte; capping
  /// it by the bytes actually left means a hostile varint cannot drive a
  /// multi-gigabyte reservation off a 20-byte payload.
  bool count(std::uint64_t &Out) { return varint(Out) && Out <= N - Pos; }

  std::size_t remaining() const { return N - Pos; }

private:
  const char *P;
  std::size_t N;
  std::size_t Pos = 0;
};

struct DecodeFailure {
  std::string Message;
};

[[noreturn]] void bad(std::string Message) {
  throw DecodeFailure{std::move(Message)};
}

std::uint64_t readCount(Reader &R, const char *What) {
  std::uint64_t V;
  if (!R.count(V))
    bad(std::string("bad or oversized ") + What + " count");
  return V;
}

VirtReg readReg(Reader &R, std::uint64_t NumVRegs) {
  std::uint64_t Id;
  if (!R.varint(Id))
    bad("truncated register id");
  if (Id >= NumVRegs)
    bad("register id " + std::to_string(Id) + " out of range");
  return VirtReg(static_cast<unsigned>(Id));
}

PhysReg readPhysReg(Reader &R) {
  std::uint8_t Bank;
  std::uint64_t Index;
  if (!R.u8(Bank) || Bank > 1 || !R.varint(Index) ||
      Index >= PhysReg::InvalidIndex)
    bad("bad physical register");
  return PhysReg(static_cast<RegBank>(Bank), static_cast<unsigned>(Index));
}

/// Decodes one instruction. Calls are validated against the declared
/// function count but resolved later (forward references, exactly like the
/// text parser's pending-callee list); the index comes back in
/// \p CalleeIndex.
Instruction readInstruction(Reader &R, std::uint64_t NumFuncs,
                            std::uint64_t NumVRegs,
                            std::uint64_t &CalleeIndex) {
  std::uint8_t Op;
  if (!R.u8(Op) || Op > static_cast<std::uint8_t>(Opcode::ShuffleMove))
    bad("bad opcode");
  Instruction I(static_cast<Opcode>(Op));

  std::uint64_t NumDefs = readCount(R, "def");
  I.Defs.reserve(NumDefs);
  for (std::uint64_t J = 0; J < NumDefs; ++J)
    I.Defs.push_back(readReg(R, NumVRegs));

  switch (I.Op) {
  case Opcode::LoadImm:
  case Opcode::FLoadImm:
    if (!R.zigzag(I.Imm))
      bad("truncated immediate");
    break;
  case Opcode::Call: {
    if (!R.varint(CalleeIndex) || CalleeIndex >= NumFuncs)
      bad("callee index out of range");
    std::uint64_t NumUses = readCount(R, "argument");
    I.Uses.reserve(NumUses);
    for (std::uint64_t J = 0; J < NumUses; ++J)
      I.Uses.push_back(readReg(R, NumVRegs));
    break;
  }
  case Opcode::SpillLoad: {
    std::uint64_t Slot;
    if (!R.varint(Slot))
      bad("truncated spill slot");
    I.SpillSlot = static_cast<unsigned>(Slot);
    I.Overhead = OverheadKind::Spill;
    break;
  }
  case Opcode::SpillStore: {
    I.Uses.push_back(readReg(R, NumVRegs));
    std::uint64_t Slot;
    if (!R.varint(Slot))
      bad("truncated spill slot");
    I.SpillSlot = static_cast<unsigned>(Slot);
    I.Overhead = OverheadKind::Spill;
    break;
  }
  case Opcode::Save:
  case Opcode::Restore:
    I.Phys = readPhysReg(R);
    break;
  case Opcode::ShuffleMove:
    I.Phys = readPhysReg(R);
    I.PhysSrc = readPhysReg(R);
    I.Overhead = OverheadKind::Shuffle;
    break;
  default: {
    std::uint64_t NumUses = readCount(R, "use");
    I.Uses.reserve(NumUses);
    for (std::uint64_t J = 0; J < NumUses; ++J)
      I.Uses.push_back(readReg(R, NumVRegs));
    break;
  }
  }
  return I;
}

} // namespace

bool ccra::encodeModuleBinary(const Module &M, std::string &Out,
                              std::string *Err) {
  Out.clear();
  std::unordered_map<const Function *, unsigned> FuncIndex;
  FuncIndex.reserve(M.functions().size());
  for (const auto &F : M.functions())
    FuncIndex.emplace(F.get(), static_cast<unsigned>(FuncIndex.size()));

  for (int Shift = 0; Shift < 32; Shift += 8)
    Out.push_back(static_cast<char>((BinaryMagic >> Shift) & 0xff));
  putString(Out, M.getName());
  putVarint(Out, M.functions().size());

  for (const auto &FPtr : M.functions()) {
    const Function &F = *FPtr;
    putString(Out, F.getName());
    unsigned NumVRegs = F.numVRegs();
    putVarint(Out, NumVRegs);
    std::string Bitmap((NumVRegs + 7) / 8, '\0');
    for (unsigned Id = 0; Id < NumVRegs; ++Id)
      if (F.vregBank(VirtReg(Id)) == RegBank::Float)
        Bitmap[Id / 8] |= static_cast<char>(1u << (Id % 8));
    Out += Bitmap;

    putVarint(Out, F.blocks().size());
    for (const auto &BB : F.blocks())
      putString(Out, BB->getName());
    for (const auto &BB : F.blocks()) {
      putVarint(Out, BB->instructions().size());
      for (const Instruction &I : BB->instructions()) {
        for (VirtReg R : I.Defs)
          if (R.Id >= NumVRegs)
            return failEncode(Err, "def register out of table range in @" +
                                       F.getName());
        for (VirtReg R : I.Uses)
          if (R.Id >= NumVRegs)
            return failEncode(Err, "use register out of table range in @" +
                                       F.getName());
        Out.push_back(static_cast<char>(I.Op));
        putRegList(Out, I.Defs);
        switch (I.Op) {
        case Opcode::LoadImm:
        case Opcode::FLoadImm:
          putZigzag(Out, I.Imm);
          break;
        case Opcode::Call: {
          const Function *Callee =
              I.Callee ? I.Callee : M.getFunction(I.CalleeName);
          auto It = Callee ? FuncIndex.find(Callee) : FuncIndex.end();
          if (It == FuncIndex.end())
            return failEncode(Err, "call to unknown function @" +
                                       (I.Callee ? I.Callee->getName()
                                                 : I.CalleeName));
          putVarint(Out, It->second);
          putRegList(Out, I.Uses);
          break;
        }
        case Opcode::SpillLoad:
          putVarint(Out, I.SpillSlot);
          break;
        case Opcode::SpillStore:
          if (I.Uses.empty())
            return failEncode(Err, "spill.store without a value operand");
          putVarint(Out, I.Uses[0].Id);
          putVarint(Out, I.SpillSlot);
          break;
        case Opcode::Save:
        case Opcode::Restore:
          putPhysReg(Out, I.Phys);
          break;
        case Opcode::ShuffleMove:
          putPhysReg(Out, I.Phys);
          putPhysReg(Out, I.PhysSrc);
          break;
        default:
          putRegList(Out, I.Uses);
          break;
        }
      }
      putVarint(Out, BB->successors().size());
      for (const CfgEdge &E : BB->successors()) {
        putVarint(Out, E.Succ->getId());
        putDouble(Out, E.Probability);
      }
    }
  }
  return true;
}

std::unique_ptr<Module> ccra::decodeModuleBinary(const std::string &Bytes,
                                                 std::string *Err) {
  Reader R(Bytes);
  try {
    std::uint32_t Magic;
    if (!R.u32(Magic) || Magic != BinaryMagic)
      bad("bad binary module magic");
    std::string Name;
    if (!R.str(Name))
      bad("truncated module name");
    auto M = std::make_unique<Module>(std::move(Name));

    std::uint64_t NumFuncs = readCount(R, "function");

    // Calls reference callees by final module index, which may be a
    // function whose shell has not decoded yet; record and resolve after
    // the last function, mirroring the text parser's pending-callee list.
    struct PendingCall {
      BasicBlock *Block;
      std::size_t Index;
      std::uint64_t Callee;
    };
    std::vector<PendingCall> Pending;

    for (std::uint64_t FI = 0; FI < NumFuncs; ++FI) {
      std::string FName;
      if (!R.str(FName))
        bad("truncated function name");
      if (M->getFunction(FName))
        bad("duplicate function @" + FName);
      Function *F = M->createFunction(FName);
      if (FName == "main")
        M->setEntryFunction(F);

      // Compare counts, not bitmap bytes: (NumVRegs + 7) / 8 wraps to 0
      // for NumVRegs near 2^64, which would pass an empty bitmap through
      // and drive the createVReg loop ~2^64 iterations. remaining() is
      // bounded by the payload size, so the multiply cannot overflow.
      std::uint64_t NumVRegs;
      if (!R.varint(NumVRegs) ||
          NumVRegs > 8 * static_cast<std::uint64_t>(R.remaining()))
        bad("bad vreg table size");
      std::string Bitmap;
      Bitmap.resize(static_cast<std::size_t>((NumVRegs + 7) / 8));
      for (std::size_t B = 0; B < Bitmap.size(); ++B) {
        std::uint8_t Byte = 0;
        R.u8(Byte); // length validated above
        Bitmap[B] = static_cast<char>(Byte);
      }
      for (std::uint64_t Id = 0; Id < NumVRegs; ++Id)
        F->createVReg((Bitmap[Id / 8] >> (Id % 8)) & 1 ? RegBank::Float
                                                       : RegBank::Int);

      std::uint64_t NumBlocks = readCount(R, "block");
      std::vector<BasicBlock *> Blocks;
      Blocks.reserve(NumBlocks);
      for (std::uint64_t BI = 0; BI < NumBlocks; ++BI) {
        std::string BName;
        if (!R.str(BName))
          bad("truncated block name in @" + FName);
        Blocks.push_back(F->createBlock(BName));
      }
      for (std::uint64_t BI = 0; BI < NumBlocks; ++BI) {
        BasicBlock *BB = Blocks[BI];
        std::uint64_t NumInsts = readCount(R, "instruction");
        BB->instructions().reserve(NumInsts);
        for (std::uint64_t II = 0; II < NumInsts; ++II) {
          std::uint64_t CalleeIndex = 0;
          Instruction I = readInstruction(R, NumFuncs, NumVRegs, CalleeIndex);
          if (BB->isTerminated())
            bad("instruction after terminator in @" + FName + " block " +
                BB->getName());
          Instruction &Placed = BB->append(std::move(I));
          if (Placed.isCall())
            Pending.push_back(
                {BB, BB->instructions().size() - 1, CalleeIndex});
        }
        std::uint64_t NumSuccs = readCount(R, "successor");
        for (std::uint64_t SI = 0; SI < NumSuccs; ++SI) {
          std::uint64_t Target;
          double Probability;
          if (!R.varint(Target) || Target >= NumBlocks)
            bad("successor index out of range in @" + FName);
          if (!R.dbl(Probability))
            bad("truncated successor probability in @" + FName);
          BB->addSuccessor(Blocks[Target], Probability);
        }
      }
    }
    if (R.remaining() > 0)
      bad("trailing bytes after module");

    for (const PendingCall &P : Pending) {
      Function *Callee = M->functions()[P.Callee].get();
      Instruction &I = P.Block->instructions()[P.Index];
      I.Callee = Callee;
      I.CalleeName = Callee->getName();
    }
    return M;
  } catch (const DecodeFailure &F) {
    if (Err)
      *Err = F.Message;
    return nullptr;
  }
}
