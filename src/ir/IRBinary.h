//===- ir/IRBinary.h - Length-prefixed binary module encoding ---*- C++ -*-===//
///
/// \file
/// A compact binary encoding of a Module, the payload format behind the
/// service's wire codec v2 (service/BinaryCodec.h). The textual `.ccra`
/// grammar (IRPrinter/IRParser) stays the canonical, human-readable form —
/// fuzz reproducers, docs, and the bit-identity contract are all stated
/// over it — but re-lexing 16 MiB of text on every cold request is pure
/// overhead for a machine client that already holds the structured module.
///
/// The encoding carries EXACTLY the information the textual round trip
/// preserves, no more: virtual-register banks but not spill-temp flags,
/// callees by module function index, CFG edge probabilities as raw IEEE
/// doubles (the text form is shortest-round-trip, so both directions are
/// bit-exact). That makes the two ingestion paths equivalent by
/// construction, and the fuzz harness enforces it:
///
///   printModule(decodeModuleBinary(encodeModuleBinary(M)))
///     == printModule(parseModule(printModule(M)))
///
/// Layout (all integers LEB128 varints unless noted; strings are a varint
/// length followed by raw bytes; doubles are 8 raw little-endian bytes):
///
///   u32 magic 'CIR2' (little-endian 0x32524943)
///   module name, function count
///   per function: name, vreg count, bank bitmap (ceil(n/8) bytes, set bit
///     = float), block count (0 = external declaration), block names, then
///     per block: instruction count, instructions, successor count,
///     successors (block index + probability)
///   per instruction: opcode u8, def count + def ids, then the same
///     opcode-directed operand shapes the textual grammar uses
///
/// decodeModuleBinary is hardened against hostile bytes the way the text
/// parser is: every length and index is validated against the buffer and
/// the declared tables before use, and misplaced terminators are rejected
/// (the service still runs verifyModule on the result, exactly as it does
/// for parsed text).
///
//===----------------------------------------------------------------------===//

#ifndef CCRA_IR_IRBINARY_H
#define CCRA_IR_IRBINARY_H

#include "ir/Module.h"

#include <memory>
#include <string>
#include <vector>

namespace ccra {

/// Serializes \p M. Returns false (leaving \p Out in an unspecified state)
/// only when the module cannot be expressed in the interchange grammar at
/// all — a call whose callee is not a function of this module, or an
/// instruction operand referencing a register outside the function's table
/// — the same modules whose printed text fails to reparse.
bool encodeModuleBinary(const Module &M, std::string &Out,
                        std::string *Err = nullptr);

/// Deserializes \p Bytes into a fresh Module. On failure returns null and
/// explains in \p Err. The decoder sizes every table exactly from the
/// counted layout before filling it, so ingestion is one linear pass with
/// no re-lexing, no rehashing, and no reallocation churn.
std::unique_ptr<Module> decodeModuleBinary(const std::string &Bytes,
                                           std::string *Err = nullptr);

} // namespace ccra

#endif // CCRA_IR_IRBINARY_H
