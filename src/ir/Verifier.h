//===- ir/Verifier.h - Structural IR validity checks ------------*- C++ -*-===//
///
/// \file
/// The verifier enforces the structural invariants the register allocator
/// relies on: well-terminated blocks, consistent CFG edge lists, opcode
/// operand signatures (count and register bank), probability sanity, and
/// that every used virtual register is defined somewhere in its function.
///
//===----------------------------------------------------------------------===//

#ifndef CCRA_IR_VERIFIER_H
#define CCRA_IR_VERIFIER_H

#include "ir/Module.h"

#include <string>
#include <vector>

namespace ccra {

/// Appends a message to \p Errors for every violated invariant in \p F.
/// Returns true if no errors were found.
bool verifyFunction(const Function &F, std::vector<std::string> *Errors);

/// Verifies every function in \p M. Returns true if the whole module is
/// well-formed.
bool verifyModule(const Module &M, std::vector<std::string> *Errors);

} // namespace ccra

#endif // CCRA_IR_VERIFIER_H
