//===- ir/Instruction.h - Three-address RISC instructions -------*- C++ -*-===//
///
/// \file
/// The instruction set of the load/store RISC machine model from §3 of the
/// paper: all operands of all operations reside in registers. The set covers
/// integer and floating-point arithmetic, program loads/stores, register
/// moves (targets of the coalescing phase), calls, branches, and the pseudo
/// operations the register allocator itself inserts (spill code and
/// save/restore code), which are the "overhead operations" the paper counts.
///
//===----------------------------------------------------------------------===//

#ifndef CCRA_IR_INSTRUCTION_H
#define CCRA_IR_INSTRUCTION_H

#include "ir/Register.h"

#include <cstdint>
#include <string>
#include <vector>

namespace ccra {

class Function;

enum class Opcode : uint8_t {
  // Integer arithmetic/logic: def 1 int, use 2 int.
  Add,
  Sub,
  Mul,
  Div,
  And,
  Or,
  Xor,
  Shl,
  Shr,
  // Integer compare: def 1 int (boolean), use 2 int.
  Cmp,
  // Immediate materialization: def 1 int / 1 float.
  LoadImm,
  FLoadImm,
  // Floating-point arithmetic: def 1 float, use 2 float.
  FAdd,
  FSub,
  FMul,
  FDiv,
  // Floating-point compare: def 1 int, use 2 float.
  FCmp,
  // Conversions.
  CvtIntToFloat, // def 1 float, use 1 int
  CvtFloatToInt, // def 1 int, use 1 float
  // Program memory operations (not allocator overhead): address is an int
  // register; the value moved is int (Load/Store) or float (FLoad/FStore).
  Load,
  Store,
  FLoad,
  FStore,
  // Register-to-register copies; candidates for the coalescing phase.
  Move,  // int -> int
  FMove, // float -> float
  // Control flow. Successor blocks live on the BasicBlock.
  Br,
  CondBr, // use 1 int condition
  Ret,
  Call, // uses = arguments, defs = return values, Callee set
  // --- Overhead pseudo-operations inserted by the register allocator ---
  // Spill code for a memory-resident live range (paper §3: spill cost).
  SpillLoad,  // def 1 (reload temp), SpillSlot set
  SpillStore, // use 1 (value to spill), SpillSlot set
  // Save/restore of a physical register: around calls for caller-save
  // registers (caller-save cost) and at entry/exit for callee-save
  // registers (callee-save cost). Operate on physical registers only.
  Save,
  Restore,
  // A move between the storage locations of a split live range
  // (shuffle cost). Physical-register operands.
  ShuffleMove,
};

/// Which of the paper's cost components an overhead instruction belongs to
/// (§3): spill cost, caller-save cost, callee-save cost, or shuffle cost.
enum class OverheadKind : uint8_t {
  None = 0,
  Spill,
  CallerSave,
  CalleeSave,
  Shuffle,
};

/// Static per-opcode properties.
struct OpcodeInfo {
  const char *Name;
  bool IsTerminator;
  bool IsCall;
  /// Touches memory: program loads/stores, spill code, save/restore. Memory
  /// operations cost extra cycles in the Table 4 execution-time model.
  bool IsMemory;
  /// A coalescable register-to-register copy.
  bool IsMove;
  /// Inserted by the register allocator; counted as overhead (§3).
  bool IsOverhead;
};

const OpcodeInfo &getOpcodeInfo(Opcode Op);

/// One three-address instruction. Defs and uses reference virtual registers
/// until allocation; the overhead pseudo-ops reference physical registers
/// via the Phys field.
struct Instruction {
  Opcode Op;
  std::vector<VirtReg> Defs;
  std::vector<VirtReg> Uses;

  /// Immediate payload for LoadImm/FLoadImm (value is irrelevant to
  /// allocation; kept for printing and the cycle model).
  int64_t Imm = 0;

  /// Target of a Call. Null only for external calls identified by
  /// CalleeName.
  Function *Callee = nullptr;
  std::string CalleeName;

  /// Spill slot index for SpillLoad/SpillStore.
  unsigned SpillSlot = ~0u;

  /// Physical register for Save/Restore, and destination of ShuffleMove.
  PhysReg Phys;
  /// Source of ShuffleMove.
  PhysReg PhysSrc;

  /// Cost component this instruction contributes to, when it is overhead.
  OverheadKind Overhead = OverheadKind::None;

  explicit Instruction(Opcode Op) : Op(Op) {}

  const OpcodeInfo &info() const { return getOpcodeInfo(Op); }
  bool isTerminator() const { return info().IsTerminator; }
  bool isCall() const { return info().IsCall; }
  bool isMove() const { return info().IsMove; }
  bool isOverhead() const { return info().IsOverhead; }
  bool isMemory() const { return info().IsMemory; }

  /// For a coalescable move, the copied-from register.
  VirtReg moveSource() const;
  /// For a coalescable move, the copied-to register.
  VirtReg moveDest() const;
};

} // namespace ccra

#endif // CCRA_IR_INSTRUCTION_H
