//===- ir/Module.cpp ------------------------------------------------------===//

#include "ir/Module.h"

#include <cassert>

using namespace ccra;

Function *Module::createFunction(const std::string &FuncName) {
  assert(!getFunction(FuncName) && "duplicate function name");
  Functions.push_back(std::make_unique<Function>(this, FuncName));
  return Functions.back().get();
}

Function *Module::getFunction(const std::string &FuncName) const {
  for (const auto &F : Functions)
    if (F->getName() == FuncName)
      return F.get();
  return nullptr;
}

Function *Module::getEntryFunction() const {
  if (Entry)
    return Entry;
  return getFunction("main");
}
