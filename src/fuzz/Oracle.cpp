//===- fuzz/Oracle.cpp ----------------------------------------------------===//

#include "fuzz/Oracle.h"

#include "analysis/AnalysisCache.h"
#include "core/EngineBuilder.h"
#include "ir/Cloner.h"
#include "ir/IRPrinter.h"
#include "ir/Module.h"
#include "ir/Verifier.h"
#include "regalloc/CostAccounting.h"

#include <cmath>
#include <map>
#include <sstream>

using namespace ccra;

namespace {

/// Everything one leg's allocation produced, keyed so legs are comparable
/// (clones differ by pointer, so functions are keyed by name).
struct LegCapture {
  CostBreakdown Totals;
  std::map<std::string, FunctionAllocation> PerFunction;
  std::string AllocatedIR;
};

bool sameCosts(const CostBreakdown &A, const CostBreakdown &B) {
  return A.Spill == B.Spill && A.CallerSave == B.CallerSave &&
         A.CalleeSave == B.CalleeSave && A.Shuffle == B.Shuffle;
}

std::string costString(const CostBreakdown &C) {
  std::ostringstream OS;
  OS << "spill=" << C.Spill << " caller=" << C.CallerSave
     << " callee=" << C.CalleeSave << " shuffle=" << C.Shuffle;
  return OS.str();
}

/// First differing line of two printed modules, for compact reports.
std::string firstDiffLine(const std::string &A, const std::string &B) {
  std::istringstream SA(A), SB(B);
  std::string LA, LB;
  unsigned Line = 0;
  while (true) {
    ++Line;
    bool HasA = static_cast<bool>(std::getline(SA, LA));
    bool HasB = static_cast<bool>(std::getline(SB, LB));
    if (!HasA && !HasB)
      return "(identical?)";
    if (!HasA || !HasB || LA != LB)
      return "line " + std::to_string(Line) + ": baseline '" +
             (HasA ? LA : "<eof>") + "' vs '" + (HasB ? LB : "<eof>") + "'";
  }
}

/// Allocates a private clone of \p M under \p Leg, appending soundness
/// findings to \p Report as it goes.
LegCapture runLeg(const Module &M, const OracleLeg &Leg,
                  const OracleOptions &OO, ModuleAnalysisCache &Cache,
                  OracleReport &Report) {
  auto Fail = [&](const std::string &Oracle, const std::string &Detail) {
    Report.Failures.push_back({Leg.Name, Oracle, Detail});
  };

  std::unique_ptr<Module> Clone = cloneModule(M);
  FrequencyInfo Freq;
  AnalysisSeeds Seeds;
  const AnalysisSeeds *SeedsPtr = nullptr;
  if (Leg.SeedFromCache) {
    // The cache is keyed on the pristine source module; its frequencies and
    // baseline liveness transfer to any clone by position / block-id
    // identity (the same sharing contract the experiment grid relies on).
    Freq = Cache.frequencies(M, OO.Mode).remappedTo(M, *Clone);
    const auto &Fns = M.functions();
    for (unsigned I = 0; I < Fns.size(); ++I) {
      if (Fns[I]->isDeclaration())
        continue;
      Seeds.BaselineLiveness.push_back(&Cache.baselineLiveness(M, I));
    }
    SeedsPtr = &Seeds;
  } else {
    Freq = FrequencyInfo::compute(*Clone, OO.Mode);
  }

  AllocationEngine Engine =
      EngineBuilder(OO.Config).options(Leg.Opts).build();
  ModuleAllocationResult Result = Engine.allocateModule(*Clone, Freq, SeedsPtr);
  ++Report.LegsRun;

  LegCapture Cap;
  Cap.Totals = Result.Totals;
  CostBreakdown Measured;
  for (const auto &F : Clone->functions()) {
    if (F->isDeclaration())
      continue;
    const FunctionAllocation &FA = Result.PerFunction.at(F.get());
    // Soundness: the post-allocation verifier ran in report-only mode.
    for (const std::string &E : FA.VerifyErrors)
      Fail("verify", E);
    Measured += measureCostFromCode(*F, Freq);
    Cap.PerFunction[F->getName()] = FA;
  }

  // Soundness: allocated code is still well-formed IR.
  std::vector<std::string> IrErrors;
  if (!verifyModule(*Clone, &IrErrors))
    Fail("ir-verify", IrErrors.empty() ? "module verification failed"
                                       : IrErrors.front());

  // Soundness: costs are finite and non-negative.
  for (double C : {Result.Totals.Spill, Result.Totals.CallerSave,
                   Result.Totals.CalleeSave, Result.Totals.Shuffle})
    if (!std::isfinite(C) || C < 0.0) {
      Fail("cost-domain", "non-finite or negative cost component: " +
                              costString(Result.Totals));
      break;
    }

  // Soundness: §3 cost reconciliation — the overhead instructions actually
  // in the code weigh exactly what the assignment-derived analysis says
  // (requires materialized save/restore code, which every leg enables).
  auto Reconciles = [](double A, double B, double RelTol) {
    return std::abs(A - B) <= RelTol * (1.0 + std::abs(B));
  };
  if (!Reconciles(Measured.Spill, Result.Totals.Spill, 1e-6) ||
      !Reconciles(Measured.CallerSave, Result.Totals.CallerSave, 1e-6) ||
      !Reconciles(Measured.CalleeSave, Result.Totals.CalleeSave, 1e-6) ||
      !Reconciles(Measured.Shuffle, Result.Totals.Shuffle, 1e-9))
    Fail("cost-reconcile", "measured {" + costString(Measured) +
                               "} vs analytic {" +
                               costString(Result.Totals) + "}");

  std::ostringstream OS;
  printModule(*Clone, OS);
  Cap.AllocatedIR = OS.str();
  return Cap;
}

bool locationsEqual(const Location &A, const Location &B) {
  return A.isRegister() == B.isRegister() &&
         (!A.isRegister() || A.Reg == B.Reg);
}

void diffAgainstBaseline(const LegCapture &Base, const LegCapture &Leg,
                         const std::string &LegName, OracleReport &Report) {
  auto Fail = [&](const std::string &Oracle, const std::string &Detail) {
    Report.Failures.push_back({LegName, Oracle, Detail});
  };

  if (!sameCosts(Base.Totals, Leg.Totals))
    Fail("totals-diff", "baseline {" + costString(Base.Totals) + "} vs {" +
                            costString(Leg.Totals) + "}");

  for (const auto &[Name, BaseFA] : Base.PerFunction) {
    auto It = Leg.PerFunction.find(Name);
    if (It == Leg.PerFunction.end()) {
      Fail("function-set-diff", "@" + Name + " missing from leg result");
      continue;
    }
    const FunctionAllocation &FA = It->second;
    if (!sameCosts(BaseFA.Costs, FA.Costs))
      Fail("cost-diff", "@" + Name + ": baseline {" +
                            costString(BaseFA.Costs) + "} vs {" +
                            costString(FA.Costs) + "}");
    if (BaseFA.Rounds != FA.Rounds ||
        BaseFA.SpilledRanges != FA.SpilledRanges ||
        BaseFA.VoluntarySpills != FA.VoluntarySpills ||
        BaseFA.CoalescedMoves != FA.CoalescedMoves ||
        BaseFA.CalleeRegsPaid != FA.CalleeRegsPaid)
      Fail("counter-diff",
           "@" + Name + ": rounds " + std::to_string(BaseFA.Rounds) + "/" +
               std::to_string(FA.Rounds) + " spilled " +
               std::to_string(BaseFA.SpilledRanges) + "/" +
               std::to_string(FA.SpilledRanges) + " voluntary " +
               std::to_string(BaseFA.VoluntarySpills) + "/" +
               std::to_string(FA.VoluntarySpills) + " coalesced " +
               std::to_string(BaseFA.CoalescedMoves) + "/" +
               std::to_string(FA.CoalescedMoves) + " calleePaid " +
               std::to_string(BaseFA.CalleeRegsPaid) + "/" +
               std::to_string(FA.CalleeRegsPaid));
    if (BaseFA.VRegLocations.size() != FA.VRegLocations.size())
      Fail("location-diff", "@" + Name + " decided " +
                                std::to_string(FA.VRegLocations.size()) +
                                " vregs, baseline " +
                                std::to_string(BaseFA.VRegLocations.size()));
    for (const auto &[V, Loc] : BaseFA.VRegLocations) {
      auto LIt = FA.VRegLocations.find(V);
      if (LIt == FA.VRegLocations.end() ||
          !locationsEqual(LIt->second, Loc)) {
        Fail("location-diff", "@" + Name + " vreg " + std::to_string(V) +
                                  " placed differently");
        break;
      }
    }
  }
  for (const auto &[Name, FA] : Leg.PerFunction) {
    (void)FA;
    if (!Base.PerFunction.count(Name))
      Fail("function-set-diff", "@" + Name + " extra in leg result");
  }

  if (Base.AllocatedIR != Leg.AllocatedIR)
    Fail("ir-diff", firstDiffLine(Base.AllocatedIR, Leg.AllocatedIR));
}

} // namespace

std::vector<OracleLeg> ccra::oracleLattice(unsigned ParallelJobs,
                                           bool SoundnessSweep) {
  // Every leg materializes save/restore code (the reconciliation oracle
  // needs the overhead instructions in the code) and runs the allocation
  // verifier in report-only mode (a violation is a finding, not an abort).
  auto Common = [](AllocatorOptions O) {
    O.MaterializeSaveRestore = true;
    O.Verify = true;
    O.VerifyReportOnly = true;
    return O;
  };
  AllocatorOptions Base = Common(improvedOptions());
  Base.GraphMode = GraphRep::Dense; // explicit, so the sparse leg differs
  Base.Jobs = 1;

  std::vector<OracleLeg> Legs;
  Legs.push_back({"baseline", Base, /*ExpectIdentical=*/false, false});

  auto Identical = [&](const std::string &Name, AllocatorOptions O,
                       bool Seeded = false) {
    Legs.push_back({Name, std::move(O), /*ExpectIdentical=*/true, Seeded});
  };
  {
    AllocatorOptions O = Base;
    O.GraphMode = GraphRep::Sparse;
    Identical("graph-sparse", O);
  }
  {
    AllocatorOptions O = Base;
    O.LegacySimplifier = true;
    Identical("simplifier-reference", O);
  }
  {
    AllocatorOptions O = Base;
    O.Jobs = ParallelJobs;
    Identical("jobs-parallel", O);
  }
  {
    AllocatorOptions O = Base;
    O.ScratchArenas = false;
    Identical("arenas-off", O);
  }
  {
    AllocatorOptions O = Base;
    O.IncrementalLiveness = false;
    Identical("liveness-legacy", O);
  }
  {
    AllocatorOptions O = Base;
    O.IncrementalReconstruction = false;
    Identical("reconstruct-legacy", O);
  }
  Identical("liveness-seeded", Base, /*Seeded=*/true);

  if (SoundnessSweep) {
    auto Sound = [&](const std::string &Name, AllocatorOptions O) {
      Legs.push_back({Name, Common(std::move(O)), false, false});
    };
    AllocatorOptions FirstUser = Base;
    FirstUser.CalleeModel = CalleeCostModel::FirstUserPays;
    Sound("callee-first-user-pays", FirstUser);
    Sound("allocator-base", baseChaitinOptions());
    Sound("allocator-optimistic", optimisticOptions());
    Sound("allocator-improved-opt", improvedOptimisticOptions());
    Sound("allocator-priority", priorityOptions());
    Sound("allocator-cbh", cbhOptions());
  }
  return Legs;
}

std::vector<std::string> ccra::OracleReport::lines() const {
  std::vector<std::string> Out;
  for (const OracleFailure &F : Failures)
    Out.push_back("[" + F.Leg + "] " + F.Oracle + ": " + F.Detail);
  return Out;
}

OracleReport ccra::runOracleLattice(const Module &M,
                                    const OracleOptions &Opts) {
  OracleReport Report;
  if (Opts.InjectedFault && Opts.InjectedFault(M))
    Report.Failures.push_back(
        {"injected-fault", "injected",
         "test hook reported a planted mismatch for this module"});

  ModuleAnalysisCache Cache;
  std::vector<OracleLeg> Legs =
      oracleLattice(Opts.ParallelJobs, Opts.SoundnessSweep);
  LegCapture Baseline;
  for (std::size_t I = 0; I < Legs.size(); ++I) {
    const OracleLeg &Leg = Legs[I];
    LegCapture Cap = runLeg(M, Leg, Opts, Cache, Report);
    if (I == 0)
      Baseline = std::move(Cap);
    else if (Leg.ExpectIdentical)
      diffAgainstBaseline(Baseline, Cap, Leg.Name, Report);
  }
  return Report;
}
