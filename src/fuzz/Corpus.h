//===- fuzz/Corpus.h - Reproducer corpus I/O --------------------*- C++ -*-===//
///
/// \file
/// The on-disk side of the fuzz harness. A corpus directory holds `.ccra`
/// textual IR modules (ir/IRParser.h grammar; `;` lines are comments, so
/// reproducers carry their provenance — seed, profile, register config,
/// failing oracles — in a header the parser ignores). The committed seed
/// corpus under `fuzz/corpus/` replays through the oracle lattice as a
/// tier-1 test suite; `ccra_fuzz` appends minimized reproducers for any
/// new mismatch it finds.
///
//===----------------------------------------------------------------------===//

#ifndef CCRA_FUZZ_CORPUS_H
#define CCRA_FUZZ_CORPUS_H

#include "ir/Module.h"

#include <memory>
#include <string>
#include <vector>

namespace ccra {

struct CorpusEntry {
  std::string Path;
  std::unique_ptr<Module> M;
  /// Leading `;` comment lines (without the marker), i.e. the provenance
  /// header writeCorpusFile emitted. Replay uses the "config: Ri,Rf,Ei,Ef"
  /// line to re-run a reproducer under its original register file.
  std::vector<std::string> HeaderLines;
};

/// Loads every `.ccra` file under \p Dir (sorted by filename, so replay
/// order is stable). Files that fail to parse or IR-verify are reported in
/// \p Errors and skipped. A missing directory is not an error — it is an
/// empty corpus.
std::vector<CorpusEntry> loadCorpusDir(const std::string &Dir,
                                       std::vector<std::string> &Errors);

/// Writes \p M to `Dir/<Tag>.ccra` (creating \p Dir if needed) with
/// \p HeaderLines emitted as leading `;` comments. Returns the path
/// written, or "" on I/O failure.
std::string writeCorpusFile(const Module &M, const std::string &Dir,
                            const std::string &Tag,
                            const std::vector<std::string> &HeaderLines);

} // namespace ccra

#endif // CCRA_FUZZ_CORPUS_H
