//===- fuzz/Shrinker.cpp --------------------------------------------------===//

#include "fuzz/Shrinker.h"

#include "ir/Cloner.h"
#include "ir/Module.h"
#include "ir/Verifier.h"

#include <algorithm>
#include <cassert>

using namespace ccra;

namespace {

/// True when every block of every body can still reach a Ret. The IR
/// verifier does not require termination, but the frequency solver's
/// linear system is singular for an exit-free cycle — so a deletion that
/// strands a loop without exits (e.g. collapsing a latch's condbr onto its
/// back edge) must be rejected, not handed to the oracle lattice.
bool cfgTerminates(const Module &M) {
  for (const auto &F : M.functions()) {
    if (F->isDeclaration())
      continue;
    const size_t N = F->numBlocks();
    std::vector<char> ReachesExit(N, 0);
    std::vector<const BasicBlock *> Work;
    for (const auto &BB : F->blocks()) {
      const Instruction *Term = BB->getTerminator();
      if (Term && Term->Op == Opcode::Ret) {
        ReachesExit[BB->getId()] = 1;
        Work.push_back(BB.get());
      }
    }
    while (!Work.empty()) {
      const BasicBlock *BB = Work.back();
      Work.pop_back();
      for (const BasicBlock *Pred : BB->predecessors())
        if (!ReachesExit[Pred->getId()]) {
          ReachesExit[Pred->getId()] = 1;
          Work.push_back(Pred);
        }
    }
    for (const auto &BB : F->blocks())
      if (!ReachesExit[BB->getId()])
        return false;
  }
  return true;
}

unsigned countInstructions(const Module &M) {
  unsigned N = 0;
  for (const auto &F : M.functions())
    for (const auto &BB : F->blocks())
      N += static_cast<unsigned>(BB->instructions().size());
  return N;
}

unsigned countBodies(const Module &M) {
  unsigned N = 0;
  for (const auto &F : M.functions())
    if (!F->isDeclaration())
      ++N;
  return N;
}

/// A candidate deletion: applied to a *clone* of the current module.
/// Returns false when inapplicable (nothing changed).
using Mutator = std::function<bool(Module &)>;

class GreedyShrinker {
public:
  GreedyShrinker(const Module &M, const ShrinkPredicate &StillFails,
                 const ShrinkOptions &Opts)
      : Current(cloneModule(M)), StillFails(StillFails), Opts(Opts) {}

  std::unique_ptr<Module> run(ShrinkStats *Stats) {
    ShrinkStats Local;
    Local.InstructionsBefore = countInstructions(*Current);
    Local.BodiesBefore = countBodies(*Current);

    bool Progress = true;
    while (Progress && !budgetExhausted()) {
      Progress = false;
      ++Local.Passes;
      Progress |= dropBodiesPass();
      Progress |= branchPass();
      Progress |= mergeBlocksPass();
      Progress |= instructionPass();
      Progress |= vregPass();
    }

    Local.Evaluations = Evaluations;
    Local.InstructionsAfter = countInstructions(*Current);
    Local.BodiesAfter = countBodies(*Current);
    if (Stats)
      *Stats = Local;
    return std::move(Current);
  }

private:
  bool budgetExhausted() const { return Evaluations >= Opts.MaxEvaluations; }

  /// Clone-mutate-check: keeps the mutation iff the smaller module is
  /// well-formed and still failing.
  bool tryAccept(const Mutator &Mut) {
    if (budgetExhausted())
      return false;
    std::unique_ptr<Module> Candidate = cloneModule(*Current);
    if (!Mut(*Candidate))
      return false;
    if (!verifyModule(*Candidate, nullptr) || !cfgTerminates(*Candidate))
      return false;
    ++Evaluations;
    if (!StillFails(*Candidate))
      return false;
    Current = std::move(Candidate);
    return true;
  }

  Function *fn(Module &M, unsigned FnIdx) {
    return M.functions()[FnIdx].get();
  }

  /// Pass 1: turn whole function bodies into external declarations. The
  /// entry function keeps its body (the frequency analysis needs an entry
  /// with code).
  bool dropBodiesPass() {
    bool Any = false;
    unsigned NumFns = static_cast<unsigned>(Current->functions().size());
    const Function *Entry = Current->getEntryFunction();
    for (unsigned FnIdx = 0; FnIdx < NumFns; ++FnIdx) {
      const Function *F = Current->functions()[FnIdx].get();
      if (F == Entry || F->isDeclaration())
        continue;
      Any |= tryAccept([&](Module &M) {
        fn(M, FnIdx)->dropBody();
        return true;
      });
    }
    return Any;
  }

  /// Pass 2: collapse branches — rewrite a condbr to an unconditional br
  /// (each side tried in turn) and erase whatever became unreachable.
  /// Acceptance renumbers blocks, so candidates are re-enumerated after
  /// every accepted rewrite.
  bool branchPass() {
    bool Any = false;
    bool Restart = true;
    while (Restart && !budgetExhausted()) {
      Restart = false;
      unsigned NumFns = static_cast<unsigned>(Current->functions().size());
      for (unsigned FnIdx = 0; FnIdx < NumFns && !Restart; ++FnIdx) {
        const Function *F = Current->functions()[FnIdx].get();
        // !Restart must short-circuit first: an accepted rewrite replaced
        // Current and freed F, so F->numBlocks() would read freed memory.
        for (unsigned BbIdx = 0; !Restart && BbIdx < F->numBlocks();
             ++BbIdx) {
          const Instruction *Term = F->blocks()[BbIdx]->getTerminator();
          if (!Term || Term->Op != Opcode::CondBr)
            continue;
          for (unsigned Keep = 0; Keep < 2 && !Restart; ++Keep) {
            if (tryAccept([&](Module &M) {
                  Function *MF = fn(M, FnIdx);
                  MF->blocks()[BbIdx]->rewriteCondBrToBr(Keep);
                  MF->eraseUnreachableBlocks();
                  return true;
                })) {
              Any = true;
              Restart = true;
            }
          }
        }
      }
    }
    return Any;
  }

  /// Pass 2b: collapse br-only chains — merge every straight-line block
  /// pair in one mutation (semantics-preserving, so usually accepted; it
  /// is what shrinks the long fall-through ladders the region generator
  /// leaves behind).
  bool mergeBlocksPass() {
    bool Any = false;
    unsigned NumFns = static_cast<unsigned>(Current->functions().size());
    for (unsigned FnIdx = 0; FnIdx < NumFns; ++FnIdx) {
      if (Current->functions()[FnIdx]->isDeclaration())
        continue;
      Any |= tryAccept([&](Module &M) {
        return fn(M, FnIdx)->mergeStraightLineBlocks() > 0;
      });
    }
    return Any;
  }

  /// Pass 3: delete instruction chunks, largest first, back to front
  /// (deletions never shift indices still to be visited). Terminators are
  /// never deleted, so the CFG is untouched.
  bool instructionPass() {
    bool Any = false;
    unsigned NumFns = static_cast<unsigned>(Current->functions().size());
    for (unsigned FnIdx = 0; FnIdx < NumFns; ++FnIdx)
      for (unsigned BbIdx = 0;
           BbIdx < Current->functions()[FnIdx]->numBlocks(); ++BbIdx)
        for (unsigned Chunk : {8u, 4u, 2u, 1u}) {
          // Deletable region: everything before the terminator. Walking
          // starts back to front, so an accepted deletion never shifts the
          // indices still to be visited.
          unsigned Size = static_cast<unsigned>(
              Current->functions()[FnIdx]->blocks()[BbIdx]->instructions()
                  .size());
          if (Size < 1 + Chunk)
            continue;
          unsigned Start = Size - 1 - Chunk;
          while (!budgetExhausted()) {
            Any |= tryAccept([&](Module &M) {
              auto &Insts = fn(M, FnIdx)->blocks()[BbIdx]->instructions();
              if (Insts.size() < 1 + Chunk || Start > Insts.size() - 1 - Chunk)
                return false;
              Insts.erase(Insts.begin() + Start,
                          Insts.begin() + Start + Chunk);
              return true;
            });
            if (Start == 0)
              break;
            Start = Start >= Chunk ? Start - Chunk : 0;
          }
        }
    return Any;
  }

  /// Pass 4: eliminate one virtual register entirely — every ordinary
  /// instruction touching it is deleted; call/ret operands referencing it
  /// are stripped (their signatures allow it); a condbr conditioned on it
  /// collapses to br. This is the cascade cleaner: it unblocks deletions
  /// pass 3 rejected for "used but never defined".
  bool vregPass() {
    bool Any = false;
    unsigned NumFns = static_cast<unsigned>(Current->functions().size());
    for (unsigned FnIdx = 0; FnIdx < NumFns; ++FnIdx) {
      unsigned NumVRegs = Current->functions()[FnIdx]->numVRegs();
      for (unsigned V = NumVRegs; V-- > 0;) {
        if (budgetExhausted())
          return Any;
        Any |= tryAccept([&](Module &M) {
          return eliminateVReg(*fn(M, FnIdx), VirtReg(V));
        });
      }
    }
    return Any;
  }

  static bool refs(const Instruction &I, VirtReg V) {
    return std::find(I.Defs.begin(), I.Defs.end(), V) != I.Defs.end() ||
           std::find(I.Uses.begin(), I.Uses.end(), V) != I.Uses.end();
  }

  static void strip(std::vector<VirtReg> &Regs, VirtReg V) {
    Regs.erase(std::remove(Regs.begin(), Regs.end(), V), Regs.end());
  }

  static bool eliminateVReg(Function &F, VirtReg V) {
    if (F.isDeclaration())
      return false;
    bool Changed = false;
    // Condbrs conditioned on V collapse first (their block list survives;
    // unreachable fallout is erased at the end).
    for (const auto &BB : F.blocks()) {
      const Instruction *Term = BB->getTerminator();
      if (Term && Term->Op == Opcode::CondBr && refs(*Term, V)) {
        BB->rewriteCondBrToBr(0);
        Changed = true;
      }
    }
    for (const auto &BB : F.blocks()) {
      auto &Insts = BB->instructions();
      for (std::size_t Idx = Insts.size(); Idx-- > 0;) {
        Instruction &I = Insts[Idx];
        if (!refs(I, V))
          continue;
        Changed = true;
        if (I.Op == Opcode::Call || I.Op == Opcode::Ret) {
          strip(I.Defs, V);
          strip(I.Uses, V);
        } else {
          assert(!I.isTerminator() && "condbr handled above; br has no regs");
          Insts.erase(Insts.begin() + static_cast<std::ptrdiff_t>(Idx));
        }
      }
    }
    if (Changed)
      F.eraseUnreachableBlocks();
    return Changed;
  }

  std::unique_ptr<Module> Current;
  const ShrinkPredicate &StillFails;
  ShrinkOptions Opts;
  unsigned Evaluations = 0;
};

} // namespace

std::unique_ptr<Module> ccra::shrinkModule(const Module &M,
                                           const ShrinkPredicate &StillFails,
                                           const ShrinkOptions &Opts,
                                           ShrinkStats *Stats) {
  return GreedyShrinker(M, StillFails, Opts).run(Stats);
}
