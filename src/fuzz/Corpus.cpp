//===- fuzz/Corpus.cpp ----------------------------------------------------===//

#include "fuzz/Corpus.h"

#include "ir/IRParser.h"
#include "ir/IRPrinter.h"
#include "ir/Verifier.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

using namespace ccra;
namespace fs = std::filesystem;

std::vector<CorpusEntry>
ccra::loadCorpusDir(const std::string &Dir, std::vector<std::string> &Errors) {
  std::vector<CorpusEntry> Entries;
  std::error_code EC;
  if (!fs::is_directory(Dir, EC))
    return Entries;

  std::vector<std::string> Paths;
  for (const fs::directory_entry &E : fs::directory_iterator(Dir, EC))
    if (E.is_regular_file() && E.path().extension() == ".ccra")
      Paths.push_back(E.path().string());
  std::sort(Paths.begin(), Paths.end());

  for (const std::string &Path : Paths) {
    std::ifstream File(Path);
    if (!File) {
      Errors.push_back(Path + ": cannot open");
      continue;
    }
    std::ostringstream Buffer;
    Buffer << File.rdbuf();
    std::string Text = Buffer.str();

    std::vector<std::string> Header;
    {
      std::istringstream Lines(Text);
      std::string Line;
      while (std::getline(Lines, Line) && !Line.empty() && Line[0] == ';') {
        std::size_t Start = Line.find_first_not_of("; \t");
        Header.push_back(Start == std::string::npos ? ""
                                                    : Line.substr(Start));
      }
    }

    ParseResult R = parseModule(Text);
    if (!R.ok()) {
      for (const std::string &E : R.Errors)
        Errors.push_back(Path + ": " + E);
      continue;
    }
    std::vector<std::string> VerifyErrors;
    if (!verifyModule(*R.M, &VerifyErrors)) {
      Errors.push_back(Path + ": " +
                       (VerifyErrors.empty() ? "IR verification failed"
                                             : VerifyErrors.front()));
      continue;
    }
    Entries.push_back({Path, std::move(R.M), std::move(Header)});
  }
  return Entries;
}

std::string ccra::writeCorpusFile(const Module &M, const std::string &Dir,
                                  const std::string &Tag,
                                  const std::vector<std::string> &HeaderLines) {
  std::error_code EC;
  fs::create_directories(Dir, EC);
  std::string Path = (fs::path(Dir) / (Tag + ".ccra")).string();
  std::ofstream Out(Path);
  if (!Out)
    return "";
  for (const std::string &Line : HeaderLines)
    Out << "; " << Line << '\n';
  printModule(M, Out);
  return Out ? Path : "";
}
