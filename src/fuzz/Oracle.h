//===- fuzz/Oracle.h - Differential allocation-soundness oracles -*- C++ -*-===//
///
/// \file
/// The oracle lattice: one fuzz input (a verified module) is allocated once
/// per *leg* — a named allocator configuration — and the results are
/// cross-checked two ways:
///
/// - **Equivalence oracles.** Every optimization the repo has grown
///   (sparse vs. dense interference graphs, worklist vs. reference
///   simplifier, parallel vs. serial module allocation, scratch arenas,
///   incremental vs. legacy liveness, incremental graph reconstruction,
///   cache-seeded baseline liveness) documents a bit-identical-results
///   contract. Each such leg is diffed against the baseline leg: cost
///   breakdowns and per-function counters must match exactly, every vreg
///   must land in the same location, and the printed allocated IR must be
///   byte-identical.
///
/// - **Soundness oracles.** Every leg — including configurations with
///   legitimately different results, like the two §4 callee-save cost
///   models and the other allocator kinds — must produce an allocation
///   that passes verifyAllocation (run in report-only mode so a violation
///   is a finding, not an abort), keeps the module IR-verified, yields
///   finite non-negative costs, and reconciles: the §3 cost measured off
///   the materialized overhead instructions must equal the analytically
///   derived cost.
///
/// Adding the next optimization = adding one OracleLeg (see
/// DESIGN.md "The oracle lattice").
///
//===----------------------------------------------------------------------===//

#ifndef CCRA_FUZZ_ORACLE_H
#define CCRA_FUZZ_ORACLE_H

#include "analysis/Frequency.h"
#include "regalloc/AllocatorOptions.h"
#include "target/MachineDescription.h"

#include <functional>
#include <string>
#include <vector>

namespace ccra {

class Module;

/// One point of the lattice: a named configuration plus the contract it is
/// held to (identical-to-baseline, or soundness-only).
struct OracleLeg {
  std::string Name;
  AllocatorOptions Opts;
  bool ExpectIdentical = false; ///< diff against the baseline leg
  bool SeedFromCache = false;   ///< seed round-1 liveness from an analysis
                                ///< cache computed on the source module
};

/// The full lattice, baseline first. \p ParallelJobs sizes the parallel
/// leg; \p SoundnessSweep includes the different-results legs (callee cost
/// models, the other allocator kinds).
std::vector<OracleLeg> oracleLattice(unsigned ParallelJobs = 4,
                                     bool SoundnessSweep = true);

struct OracleOptions {
  RegisterConfig Config = RegisterConfig(8, 6, 2, 2);
  FrequencyMode Mode = FrequencyMode::Profile;
  unsigned ParallelJobs = 4;
  /// Include the soundness-only legs (other cost models / allocators).
  bool SoundnessSweep = true;
  /// Test-only fault injection: when set and true for the input module, the
  /// lattice reports a synthetic "injected-fault" mismatch. Exists so the
  /// shrinker's convergence is itself testable (tests/FuzzTest.cpp).
  std::function<bool(const Module &)> InjectedFault;
};

struct OracleFailure {
  std::string Leg;    ///< which lattice leg (or "injected-fault")
  std::string Oracle; ///< which check tripped ("ir-diff", "verify", ...)
  std::string Detail;
};

struct OracleReport {
  std::vector<OracleFailure> Failures;
  unsigned LegsRun = 0;
  bool ok() const { return Failures.empty(); }
  /// One line per failure, for logs and reproducer headers.
  std::vector<std::string> lines() const;
};

/// Runs \p M (never mutated: every leg allocates a private clone) through
/// the lattice under \p Opts.
OracleReport runOracleLattice(const Module &M, const OracleOptions &Opts);

} // namespace ccra

#endif // CCRA_FUZZ_ORACLE_H
