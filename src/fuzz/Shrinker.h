//===- fuzz/Shrinker.h - Greedy reproducer minimization ---------*- C++ -*-===//
///
/// \file
/// Shrinks a failing fuzz module into a minimal reproducer by greedy
/// deletion: whole function bodies, branch sides (condbr rewritten to br,
/// unreachable blocks erased), instruction chunks, and single virtual
/// registers (every instruction touching the register removed, with
/// call/ret operands stripped instead). A candidate deletion is kept only
/// if the smaller module still verifies as IR *and* still fails the
/// caller's predicate — typically "the oracle lattice still reports a
/// mismatch" — so the output is a well-formed module that reproduces the
/// original finding. Passes repeat to a fixpoint under a deterministic
/// evaluation budget.
///
//===----------------------------------------------------------------------===//

#ifndef CCRA_FUZZ_SHRINKER_H
#define CCRA_FUZZ_SHRINKER_H

#include <functional>
#include <memory>

namespace ccra {

class Module;

/// Must return true while the module still exhibits the failure being
/// minimized. Called only on IR-verified modules; must not mutate its
/// argument (the oracle lattice clones internally, so it qualifies).
using ShrinkPredicate = std::function<bool(const Module &)>;

struct ShrinkOptions {
  /// Cap on predicate evaluations (each one typically runs the full oracle
  /// lattice, so this is the shrink time budget). The result is whatever
  /// the greedy passes reached when the budget ran out.
  unsigned MaxEvaluations = 1500;
};

struct ShrinkStats {
  unsigned Evaluations = 0;  ///< predicate runs consumed
  unsigned Passes = 0;       ///< full pass cycles until fixpoint/budget
  unsigned InstructionsBefore = 0;
  unsigned InstructionsAfter = 0;
  unsigned BodiesBefore = 0; ///< functions with a body
  unsigned BodiesAfter = 0;
};

/// Returns a minimized module that still satisfies \p StillFails.
/// \p M itself is never modified. Requires StillFails(M) on entry (callers
/// only shrink modules that already failed the lattice).
std::unique_ptr<Module> shrinkModule(const Module &M,
                                     const ShrinkPredicate &StillFails,
                                     const ShrinkOptions &Opts = {},
                                     ShrinkStats *Stats = nullptr);

} // namespace ccra

#endif // CCRA_FUZZ_SHRINKER_H
