//===- ccra.h - Umbrella header for the CCRA library ------------*- C++ -*-===//
///
/// \file
/// Single-include public API for the call-cost directed register
/// allocation library. Pulls in everything an application needs to build
/// or load a program, assemble an engine, allocate, and inspect results:
///
/// \code
///   #include "ccra.h"
///
///   ccra::Telemetry T;
///   ccra::AllocationEngine Engine =
///       ccra::EngineBuilder(ccra::RegisterConfig(9, 7, 3, 3))
///           .options(ccra::improvedOptions())
///           .jobs(0) // one job per hardware thread
///           .telemetry(&T)
///           .build();
///   ccra::ModuleAllocationResult R = Engine.allocateModule(M, Freq);
///   T.snapshot().writeJson(std::cout);
/// \endcode
///
/// Internal layers (regalloc/ passes, analysis/ internals beyond
/// Frequency) stay behind their own headers; include them directly when
/// extending the allocator itself.
///
//===----------------------------------------------------------------------===//

#ifndef CCRA_CCRA_H
#define CCRA_CCRA_H

// Program representation: build, parse, print, clone, verify.
#include "ir/Cloner.h"
#include "ir/IRBuilder.h"
#include "ir/IRParser.h"
#include "ir/IRPrinter.h"
#include "ir/Module.h"
#include "ir/Verifier.h"

// Execution-frequency estimation (profile-derived or static) and the
// shared analysis cache grids use to compute each analysis once.
#include "analysis/AnalysisCache.h"
#include "analysis/Frequency.h"

// Target model: register banks, caller/callee-save split, named configs.
#include "target/MachineDescription.h"

// The engine and its construction API.
#include "core/AllocatorFactory.h"
#include "core/EngineBuilder.h"
#include "regalloc/AllocationEngine.h"

// Observability and parallel execution support.
#include "support/Telemetry.h"
#include "support/ThreadPool.h"

// Experiment driver: one evaluation grid point per run.
#include "harness/Experiment.h"

#endif // CCRA_CCRA_H
